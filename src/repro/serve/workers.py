"""The crash-only worker pool: subprocess workers that may die at any
instant without taking a request — let alone the daemon — with them.

Same scheduler idiom as the experiment harness (DESIGN.md §12): worker
*processes* connected by pipes, multiplexed with
``multiprocessing.connection.wait``.  The differences fit the serve
workload:

- workers are **persistent** (a compile costs milliseconds; a fork plus
  imports costs more) but **crash-only**: a worker holds no state that
  matters — results live in the shared store, requests in the parent —
  so recovery from segfault, OOM kill, injected ``kill``, or a wedged
  toolchain is always the same: reap, respawn, re-dispatch.  There is
  no worker "shutdown protocol" beyond a sentinel; ``kill -9`` is an
  equally valid exit.
- a worker that exceeds its per-job **deadline** is terminated (then
  killed) and respawned; only the one overdue job fails, every other
  in-flight job keeps its worker.
- the scheduler runs on a daemon *thread* (the daemon's main thread is
  the asyncio event loop); ``submit`` returns a
  :class:`concurrent.futures.Future` the loop awaits via
  ``asyncio.wrap_future``.

Fault sites (chaos grammar, DESIGN.md §12): ``serve.worker`` fires in
the worker as a job starts — ``REPRO_FAULTS=serve.worker:kill:times=2``
kills two workers mid-job across the whole daemon; ``serve.toolchain``
fires before a native-engine compile, so toolchain wedges are
deterministically reproducible.
"""

from __future__ import annotations

import collections
import itertools
import multiprocessing
import os
import threading
import time
from concurrent.futures import Future
from multiprocessing.connection import wait as _connection_wait
from typing import Any, Optional

__all__ = ["JobFailed", "WorkerCrash", "WorkerPool", "WorkerTimeout", "execute_job"]


class WorkerCrash(RuntimeError):
    """The worker process died mid-job (segfault/OOM/injected kill)."""

    def __init__(self, exitcode: Optional[int]):
        self.exitcode = exitcode
        super().__init__(f"worker died mid-job (exit code {exitcode})")


class WorkerTimeout(RuntimeError):
    """The job exceeded its deadline; the worker was killed."""

    def __init__(self, deadline_s: float):
        self.deadline_s = deadline_s
        super().__init__(f"job exceeded its {deadline_s:g}s deadline")


class JobFailed(RuntimeError):
    """The job raised in the worker (the worker itself survived)."""

    def __init__(self, error_type: str, message: str):
        self.error_type = error_type
        super().__init__(f"{error_type}: {message}")


# -- worker-side execution ----------------------------------------------------


def execute_job(job: dict, cache_dir: Optional[str]) -> dict:
    """Run one job dict (a normalised request) to a JSON-able result.

    Top-level so the chaos/unit suites can call it in-process; the
    worker loop below calls it after firing the ``serve.worker`` site.
    """
    kind = job.get("kind")
    if kind == "compile":
        return _execute_compile(job, cache_dir)
    if kind == "experiment":
        return _execute_experiment(job, cache_dir)
    if kind == "probe":  # health probe: proves the worker round-trips
        return {"pid": os.getpid()}
    raise ValueError(f"unknown job kind {kind!r}")


def _execute_compile(job: dict, cache_dir: Optional[str]) -> dict:
    from repro.frontend.spec import StencilSpec
    from repro.pipeline.cache import ArtifactCache
    from repro.pipeline.driver import compile_spec
    from repro.resilience.faults import maybe_fault

    spec = StencilSpec.from_json(job["spec"])
    if job["engine"] == "native":
        # Deterministic stand-in for a wedged/crashing cc invocation.
        maybe_fault("serve.toolchain", label=spec.name)
    result = compile_spec(
        spec,
        sizes=job.get("sizes"),
        seed=job.get("seed"),
        lint=job.get("lint", False),
        execute=job.get("execute", True),
        codegen=job.get("codegen", False),
        cache=ArtifactCache(cache_dir=cache_dir),
        engine=job["engine"],
    )
    execute = next((r for r in result.records if r.name == "execute"), None)
    return {
        "spec": result.spec.name,
        "sizes": dict(result.sizes),
        "seed": result.seed,
        "engine": job["engine"],
        "engine_used": (
            getattr(execute.artifact, "engine_used", job["engine"])
            if execute is not None
            else None
        ),
        "stages": [
            {
                "name": r.name,
                "key": f"{r.name}-{r.key}",
                "cached": r.cached,
                "wall_s": round(r.wall_s, 6),
            }
            for r in result.records
        ],
        "cached": bool(result.records) and not result.stages_run,
        "degradation": (
            getattr(execute.artifact, "degradation", None)
            if execute is not None
            else None
        ),
        "outputs_sha256": (
            getattr(execute.artifact, "outputs_sha256", None)
            if execute is not None
            else None
        ),
    }


def _execute_experiment(job: dict, cache_dir: Optional[str]) -> dict:
    from dataclasses import asdict

    from repro.codes import get_version
    from repro.experiments.harness import SimTask, SimulationRunner
    from repro.machine.configs import MACHINES

    machine = next(m for m in MACHINES if m.name == job["machine"])
    version = get_version(job["code"], job["version"])
    task = SimTask.of(
        version,
        job["sizes"],
        machine,
        passes=job["passes"],
        seed=job["seed"],
    )
    runner = SimulationRunner(jobs=1, cache_dir=cache_dir)
    try:
        sim = runner.run_tasks([task])[0]
        return {
            "task": task.label,
            "key": runner.task_key(task),
            "cached": runner.cache_hits > 0,
            "result": asdict(sim),
        }
    finally:
        runner.close()


def _worker_main(conn, cache_dir: Optional[str]) -> None:
    """Persistent worker loop: recv job, execute, send outcome, repeat.

    Crash-only by construction: nothing here needs to run on the way
    out.  A fault, a segfault, or the parent's ``kill()`` all leave the
    shared store consistent (its writes are atomic) and the parent
    replans from EOF on the pipe.
    """
    from repro import obs
    from repro.resilience.faults import maybe_fault, reset_plan

    # The fork inherited the parent's armed plan object; re-arm from the
    # environment so per-process state (after=, p= RNGs) starts fresh
    # while cross-process injection counts stay in REPRO_FAULTS_DIR.
    reset_plan()
    while True:
        try:
            message = conn.recv()
        except (EOFError, OSError):
            break
        if message is None:
            break
        job_id, job = message
        try:
            # A fresh registry per job: the snapshot shipped home is
            # exactly this job's contribution (same idiom as harness).
            obs.reset_metrics()
            maybe_fault("serve.worker", label=job.get("label", job.get("kind", "")))
            result = execute_job(job, cache_dir)
            payload = {
                "metrics": obs.get_metrics().snapshot(),
                "dedup": list(obs.seen_keys()),
            }
            conn.send((job_id, "ok", result, payload))
        except BaseException as exc:  # noqa: BLE001 - parent classifies
            try:
                conn.send((job_id, "err", type(exc).__name__, str(exc)))
            except Exception:
                pass
    conn.close()


# -- parent-side pool ---------------------------------------------------------


def _fail_future(future: Future, exc: BaseException) -> None:
    """Fail ``future`` unless it already resolved (races the scheduler
    thread delivering a result between our done() check and set)."""
    if future.done():
        return
    try:
        future.set_exception(exc)
    except Exception:  # InvalidStateError: the result won the race
        pass


class _Worker:
    """Parent-side record of one worker process."""

    __slots__ = ("proc", "conn", "job_id", "future", "deadline", "started_at")

    def __init__(self, proc, conn):
        self.proc = proc
        self.conn = conn
        self.job_id: Optional[int] = None
        self.future: Optional[Future] = None
        self.deadline: Optional[float] = None
        self.started_at = time.monotonic()

    @property
    def busy(self) -> bool:
        return self.future is not None


class WorkerPool:
    """N crash-only workers behind a ``connection.wait`` scheduler thread."""

    def __init__(
        self,
        workers: int = 2,
        cache_dir: Optional[str] = None,
        deadline_s: Optional[float] = None,
    ) -> None:
        self.size = max(1, int(workers))
        self.cache_dir = str(cache_dir) if cache_dir is not None else None
        self.deadline_s = deadline_s
        self._ctx = multiprocessing.get_context()
        self._lock = threading.Lock()
        self._pending: collections.deque = collections.deque()
        self._workers: list[_Worker] = []
        self._job_ids = itertools.count(1)
        self._wake_r, self._wake_w = self._ctx.Pipe(duplex=False)
        self._closing = threading.Event()
        self._thread: Optional[threading.Thread] = None
        self.restarts = 0
        self.completed = 0
        self.crashes = 0
        self.timeouts = 0

    # -- lifecycle -------------------------------------------------------

    def start(self) -> None:
        if self._thread is not None:
            raise RuntimeError("pool already started")
        for _ in range(self.size):
            self._workers.append(self._spawn())
        self._thread = threading.Thread(
            target=self._scheduler, name="serve-pool", daemon=True
        )
        self._thread.start()

    def _spawn(self) -> _Worker:
        recv_ours, send_theirs = self._ctx.Pipe(duplex=False)
        recv_theirs, send_ours = self._ctx.Pipe(duplex=False)
        proc = self._ctx.Process(
            target=_worker_loop_entry,
            args=(recv_theirs, send_theirs, self.cache_dir),
            daemon=True,
        )
        proc.start()
        send_theirs.close()
        recv_theirs.close()
        worker = _Worker(proc, _DuplexPair(recv_ours, send_ours))
        return worker

    def shutdown(self, grace_s: float = 10.0) -> None:
        """Stop accepting, let in-flight jobs finish within ``grace_s``,
        then take the pool down (kill anything still running).

        While ``_closing`` is set the scheduler keeps dispatching the
        already-accepted queue and delivering results; it only refuses
        *new* submissions.  So the grace loop here normally observes the
        pool go idle with every future resolved, and the failure path
        below only fires for jobs that truly outlived the grace window.
        """
        self._closing.set()
        self._wake()
        deadline = time.monotonic() + grace_s
        while time.monotonic() < deadline:
            with self._lock:
                idle = not self._pending and not any(
                    w.busy for w in self._workers
                )
            if idle:
                break
            time.sleep(0.05)
        with self._lock:
            workers, self._workers = self._workers, []
            pending, self._pending = list(self._pending), collections.deque()
        for _, _, future, _ in pending:
            _fail_future(future, RuntimeError("pool shut down"))
        for worker in workers:
            try:
                worker.conn.send(None)
            except (OSError, ValueError):
                pass
            if worker.future is not None:
                _fail_future(worker.future, RuntimeError("pool shut down"))
        for worker in workers:
            worker.proc.join(1.0)
            if worker.proc.is_alive():
                worker.proc.kill()
                worker.proc.join()
            worker.conn.close()
        if self._thread is not None:
            self._thread.join(2.0)
            self._thread = None

    # -- submission ------------------------------------------------------

    def submit(self, job: dict, deadline_s: Optional[float] = None) -> Future:
        """Queue one job; the future resolves to the worker's result dict
        or raises :class:`WorkerCrash` / :class:`WorkerTimeout` /
        :class:`JobFailed`."""
        if self._closing.is_set():
            raise RuntimeError("pool is shutting down")
        future: Future = Future()
        job_id = next(self._job_ids)
        if deadline_s is None:
            deadline_s = self.deadline_s
        with self._lock:
            self._pending.append((job_id, job, future, deadline_s))
        self._wake()
        return future

    def _wake(self) -> None:
        try:
            self._wake_w.send(b"x")
        except (OSError, ValueError):
            pass

    # -- the scheduler thread -------------------------------------------

    def _scheduler(self) -> None:
        while True:
            self._dispatch()
            closing = self._closing.is_set()
            waitables: list[Any] = [self._wake_r]
            timeout = 0.5
            now = time.monotonic()
            with self._lock:
                busy = sum(1 for w in self._workers if w.busy)
                pending = len(self._pending)
                alive = len(self._workers)
                for worker in self._workers:
                    waitables.append(worker.conn.recv_conn)
                    if worker.busy and worker.deadline is not None:
                        timeout = min(timeout, max(0.0, worker.deadline - now))
            if closing and busy == 0 and (pending == 0 or alive == 0):
                # Draining is done: every dispatched job delivered its
                # result (or its worker died and the future failed), and
                # nothing dispatchable remains.  shutdown() fails whatever
                # is left and reaps the processes.
                break
            try:
                ready = _connection_wait(waitables, timeout=timeout)
            except OSError:
                # A connection was torn down under us (shutdown race or a
                # worker dying between snapshot and wait): just rescan.
                continue
            for conn in ready:
                if conn is self._wake_r:
                    try:
                        while self._wake_r.poll():
                            self._wake_r.recv()
                    except (EOFError, OSError):
                        pass
                    continue
                self._on_worker_message(conn)
            self._reap_overdue()

    def _dispatch(self) -> None:
        # Loop of passes: each pass assigns pending jobs under the lock;
        # workers found dead are replaced *after* the lock is released
        # (_replace takes the lock itself, and mutates self._workers),
        # then one more pass lets the replacements pick up requeued jobs.
        while True:
            dead: list[_Worker] = []
            with self._lock:
                for worker in self._workers:
                    if not self._pending:
                        break
                    if worker.busy:
                        continue
                    job_id, job, future, deadline_s = self._pending.popleft()
                    if future.cancelled():
                        continue
                    try:
                        worker.conn.send((job_id, job))
                    except (OSError, ValueError):
                        # Worker died while idle: requeue the job and
                        # respawn once we are outside the lock.
                        self._pending.appendleft(
                            (job_id, job, future, deadline_s)
                        )
                        dead.append(worker)
                        continue
                    worker.job_id = job_id
                    worker.future = future
                    worker.deadline = (
                        time.monotonic() + deadline_s
                        if deadline_s is not None
                        else None
                    )
            if not dead:
                return
            for worker in dead:
                self._replace(worker, count_restart=True)

    def _on_worker_message(self, conn) -> None:
        from repro import obs

        with self._lock:
            worker = next(
                (w for w in self._workers if w.conn.recv_conn is conn), None
            )
        if worker is None:
            return
        try:
            message = worker.conn.recv()
        except (EOFError, OSError):
            self._worker_died(worker)
            return
        future = worker.future
        with self._lock:
            worker.job_id = None
            worker.future = None
            worker.deadline = None
        if future is None or future.done():
            return
        if message[1] == "ok":
            _, _, result, payload = message
            obs.merge_snapshot(payload["metrics"])
            obs.merge_dedup(payload["dedup"])
            self.completed += 1
            obs.get_metrics().counter("serve.jobs.completed").inc()
            future.set_result(result)
        else:
            _, _, exc_type, exc_msg = message
            obs.get_metrics().counter("serve.jobs.failed").inc()
            future.set_exception(JobFailed(exc_type, exc_msg))

    def _worker_died(self, worker: _Worker) -> None:
        worker.proc.join(1.0)
        exitcode = worker.proc.exitcode
        future = worker.future
        self._replace(worker, count_restart=True)
        if future is not None and not future.done():
            self.crashes += 1
            _fail_future(future, WorkerCrash(exitcode))

    def _reap_overdue(self) -> None:
        now = time.monotonic()
        with self._lock:
            overdue = [
                w
                for w in self._workers
                if w.busy and w.deadline is not None and now >= w.deadline
            ]
        for worker in overdue:
            worker.proc.terminate()
            worker.proc.join(1.0)
            if worker.proc.is_alive():
                worker.proc.kill()
                worker.proc.join()
            future = worker.future
            deadline_s = self.deadline_s
            self._replace(worker, count_restart=True)
            if future is not None and not future.done():
                self.timeouts += 1
                _fail_future(future, WorkerTimeout(deadline_s or 0.0))

    def _replace(self, worker: _Worker, count_restart: bool) -> None:
        # Takes self._lock (non-reentrant): callers MUST NOT hold it —
        # collect dead workers under the lock, replace after releasing.
        from repro import obs

        try:
            worker.conn.close()
        except Exception:
            pass
        if worker.proc.is_alive():
            worker.proc.kill()
            worker.proc.join()
        with self._lock:
            if worker in self._workers:
                self._workers.remove(worker)
                if not self._closing.is_set():
                    self._workers.append(self._spawn())
        if count_restart:
            self.restarts += 1
            obs.get_metrics().counter("serve.worker_restarts").inc()
            obs.event("serve.worker_restart", exitcode=worker.proc.exitcode)

    # -- introspection ---------------------------------------------------

    def snapshot(self) -> dict:
        with self._lock:
            busy = sum(1 for w in self._workers if w.busy)
            alive = sum(1 for w in self._workers if w.proc.is_alive())
            queued = len(self._pending)
        return {
            "size": self.size,
            "alive": alive,
            "busy": busy,
            "queued": queued,
            "completed": self.completed,
            "restarts": self.restarts,
            "crashes": self.crashes,
            "timeouts": self.timeouts,
            "deadline_s": self.deadline_s,
        }


class _DuplexPair:
    """The two one-way pipes of one worker, presented as one endpoint."""

    __slots__ = ("recv_conn", "send_conn")

    def __init__(self, recv_conn, send_conn):
        self.recv_conn = recv_conn
        self.send_conn = send_conn

    def send(self, obj) -> None:
        self.send_conn.send(obj)

    def recv(self):
        return self.recv_conn.recv()

    def close(self) -> None:
        for conn in (self.recv_conn, self.send_conn):
            try:
                conn.close()
            except OSError:
                pass


def _worker_loop_entry(recv_conn, send_conn, cache_dir) -> None:
    _worker_main(_DuplexPair(recv_conn, send_conn), cache_dir)
