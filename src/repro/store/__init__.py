"""Unified provenance-tracking content-addressed store (DESIGN.md §16).

One storage layer behind every cache in the repo — the pipeline
artifact cache, the experiment harness's simulation-result cache, and
the native ``.so`` cache — with pluggable backends (local directory,
sqlite, in-memory), a provenance record per entry, the consolidated
fingerprint module, the ``@op`` memoization decorator, and the
``repro store`` CLI group.
"""

from repro.store.backend import (
    DirBackend,
    EntryInfo,
    MemoryBackend,
    SqliteBackend,
    open_backend,
)
from repro.store.core import Store
from repro.store.fingerprint import (
    canonical_json,
    content_hash,
    engine_fingerprint,
    reset_engine_fingerprint,
    toolchain_fingerprint,
)
from repro.store.ops import get_default_store, op, set_default_store
from repro.store.provenance import PROVENANCE_SCHEMA, Provenance

__all__ = [
    "DirBackend",
    "EntryInfo",
    "MemoryBackend",
    "PROVENANCE_SCHEMA",
    "Provenance",
    "SqliteBackend",
    "Store",
    "canonical_json",
    "content_hash",
    "engine_fingerprint",
    "get_default_store",
    "op",
    "open_backend",
    "reset_engine_fingerprint",
    "set_default_store",
    "toolchain_fingerprint",
]
