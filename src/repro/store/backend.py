"""Pluggable storage backends for the unified store (DESIGN.md §16).

A backend stores digest-verified JSON bodies plus optional provenance
sidecars under string keys.  The contract (duck-typed; every method
below) is:

- ``get(key) -> body | None`` — digest-verified; a corrupt entry is
  healed (quarantined or deleted), counted, and reported as a miss.
- ``put(key, body, provenance=None, label="")`` — atomic; a reader
  (or a concurrent writer) never observes a torn entry, and a process
  killed mid-write leaves no corrupt *visible* entry.
- ``annotate(key, provenance)`` — attach/replace provenance without
  touching the value bytes (migration uses this so legacy entries stay
  bit-identical).
- ``provenance(key) -> Provenance | None``
- ``delete(key) -> bool`` — removes the entry, its provenance, and any
  companion file the body names under ``"file"`` (compiled objects).
- ``keys() -> list[str]`` / ``items() -> list[EntryInfo]`` — listing
  without deserialising bodies.
- ``close()``

Backends:

- :class:`MemoryBackend` — a dict; lifetime of the process.
- :class:`DirBackend` — the repo's historical local-directory layout,
  byte-compatible with the three pre-store caches: one
  ``<key>.json`` digest-wrapped file per entry (atomic temp +
  ``os.replace`` writes, ``.corrupt/`` quarantine via
  :mod:`repro.resilience.cachesafe`) plus a ``.prov/<key>.json``
  provenance sidecar.  Warm caches written before the unified store
  hit unchanged.
- :class:`SqliteBackend` — one WAL-mode sqlite file, safe under
  concurrent harness worker processes: writes are transactions
  (last-write-wins, never torn), reads re-verify the body digest and
  heal corrupt rows by deleting them.
"""

from __future__ import annotations

import json
import os
import sqlite3
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Optional, Union

from repro.resilience.cachesafe import (
    atomic_write_json,
    body_digest,
    note_corruption,
    quarantine_file,
    read_verified_json,
)
from repro.resilience.faults import maybe_corrupt, maybe_fault
from repro.store.provenance import Provenance

__all__ = [
    "EntryInfo",
    "MemoryBackend",
    "DirBackend",
    "SqliteBackend",
    "open_backend",
]

#: File suffixes that select the sqlite backend in ``open_backend``.
SQLITE_SUFFIXES = (".sqlite", ".sqlite3", ".db")

#: Name of the provenance sidecar directory inside a DirBackend root.
PROV_DIR = ".prov"


@dataclass(frozen=True)
class EntryInfo:
    """One entry's metadata, cheap enough to list a whole store."""

    key: str
    nbytes: int
    created_at: float
    provenance: Optional[Provenance]

    @property
    def op(self) -> str:
        return self.provenance.op if self.provenance is not None else "?"

    @property
    def engine(self) -> str:
        return (
            self.provenance.engine if self.provenance is not None
            else "unknown"
        )


class MemoryBackend:
    """Process-lifetime dict backend (no persistence, no healing)."""

    def __init__(self) -> None:
        self._entries: dict[str, tuple[Any, Optional[Provenance], float]] = {}

    def get(self, key: str) -> Optional[Any]:
        slot = self._entries.get(key)
        return slot[0] if slot is not None else None

    def put(
        self,
        key: str,
        body: Any,
        provenance: Optional[Provenance] = None,
        label: str = "",
    ) -> None:
        self._entries[key] = (body, provenance, time.time())

    def annotate(self, key: str, provenance: Provenance) -> None:
        slot = self._entries.get(key)
        if slot is not None:
            self._entries[key] = (slot[0], provenance, slot[2])

    def provenance(self, key: str) -> Optional[Provenance]:
        slot = self._entries.get(key)
        return slot[1] if slot is not None else None

    def delete(self, key: str) -> bool:
        return self._entries.pop(key, None) is not None

    def keys(self) -> list[str]:
        return sorted(self._entries)

    def items(self) -> list[EntryInfo]:
        return [
            EntryInfo(
                key=key,
                nbytes=len(json.dumps(body, sort_keys=True)),
                created_at=ts,
                provenance=prov,
            )
            for key, (body, prov, ts) in sorted(self._entries.items())
        ]

    def close(self) -> None:
        pass


class DirBackend:
    """The historical one-JSON-file-per-entry directory layout.

    ``site`` names this store in warnings, counters, and fault-injection
    sites: a write fires the ``<site>.store`` corruption hook (the chaos
    suite's ``harness.cache.store:corrupt`` / ``pipeline.cache.store``
    sites keep working verbatim), and a corrupt read quarantines into
    ``.corrupt/`` exactly as the pre-store caches did.  ``indent``
    preserves each legacy cache's on-disk formatting (the pipeline wrote
    ``indent=2``; the harness wrote compact JSON) so healed entries stay
    bit-identical to what the previous code produced.
    """

    def __init__(
        self,
        root: Union[str, os.PathLike],
        site: str = "store",
        indent: Optional[int] = None,
    ) -> None:
        self.root = Path(root)
        self.site = site
        self.indent = indent
        # Fail fast on an unusable location, before any work is spent.
        self.root.mkdir(parents=True, exist_ok=True)

    def _path(self, key: str) -> Path:
        return self.root / f"{key}.json"

    def _prov_path(self, key: str) -> Path:
        return self.root / PROV_DIR / f"{key}.json"

    def get(self, key: str) -> Optional[Any]:
        return read_verified_json(self._path(key), site=self.site)

    def put(
        self,
        key: str,
        body: Any,
        provenance: Optional[Provenance] = None,
        label: str = "",
    ) -> None:
        path = self._path(key)
        atomic_write_json(path, body, indent=self.indent)
        if provenance is not None:
            self.annotate(key, provenance)
        # Fault-injection hook: the chaos suite corrupts the entry just
        # written and asserts the next read heals it.
        maybe_corrupt(f"{self.site}.store", path, label=label or key)

    def annotate(self, key: str, provenance: Provenance) -> None:
        prov_path = self._prov_path(key)
        prov_path.parent.mkdir(exist_ok=True)
        atomic_write_json(prov_path, provenance.to_json())

    def provenance(self, key: str) -> Optional[Provenance]:
        prov_path = self._prov_path(key)
        if not prov_path.exists():
            return None
        body = read_verified_json(prov_path, site=f"{self.site}.prov")
        return Provenance.from_json(body)

    def delete(self, key: str) -> bool:
        path = self._path(key)
        companion = self._companion_file(path)
        existed = path.exists()
        path.unlink(missing_ok=True)
        self._prov_path(key).unlink(missing_ok=True)
        if companion is not None:
            companion.unlink(missing_ok=True)
        return existed

    def _companion_file(self, path: Path) -> Optional[Path]:
        """A non-JSON file the entry body names (compiled ``.so``s)."""
        try:
            wrapper = json.loads(path.read_text())
            name = wrapper["body"]["file"]
        except (OSError, ValueError, TypeError, KeyError):
            return None
        if not isinstance(name, str) or os.path.sep in name:
            return None
        companion = self.root / name
        return companion if companion.exists() else None

    def keys(self) -> list[str]:
        return sorted(p.stem for p in self.root.glob("*.json"))

    def items(self) -> list[EntryInfo]:
        infos = []
        for path in sorted(self.root.glob("*.json")):
            try:
                stat = path.stat()
            except OSError:
                continue
            key = path.stem
            prov = self.provenance(key)
            created = prov.created_at if prov and prov.created_at else stat.st_mtime
            infos.append(
                EntryInfo(
                    key=key,
                    nbytes=stat.st_size,
                    created_at=created,
                    provenance=prov,
                )
            )
        return infos

    def quarantine(self, key: str, problem: str) -> None:
        """Move one entry to ``.corrupt/`` (the self-heal idiom)."""
        quarantine_file(self._path(key), site=self.site, problem=problem)

    def close(self) -> None:
        pass


class SqliteBackend:
    """One WAL-mode sqlite file; safe under concurrent worker processes.

    Writes are single transactions with ``INSERT OR REPLACE``: two
    processes racing on the same key converge on last-write-wins and a
    reader never observes a torn row; a process killed mid-write rolls
    back, leaving the previous value (or nothing) visible.  Reads
    re-verify the body digest — a corrupt row (disk damage, a broken
    writer) is deleted, counted through the same
    ``store.heal.*``/``resilience.cache.corrupt`` counters as the
    directory backend, and reported as a miss.

    ``PRAGMA busy_timeout`` makes sqlite itself wait on a plain row
    lock, but "database is locked" can still escape it — a competing
    ``BEGIN IMMEDIATE`` held past the timeout under a pile-up of
    writers, or a WAL snapshot conflict, both surface as
    ``sqlite3.OperationalError`` after the pragma gives up.  Every
    write (``put``/``annotate``/``delete``) therefore retries the whole
    transaction with capped exponential backoff
    (:data:`LOCKED_BACKOFF_S`, ~3 s worst case) and counts
    ``store.locked_retries`` before letting the error propagate:
    under the serve daemon's concurrent workers a transient lock storm
    costs milliseconds, not a failed request.
    """

    #: Backoff schedule (seconds) for "database is locked" retries.
    LOCKED_BACKOFF_S = (0.01, 0.02, 0.05, 0.1, 0.25, 0.5, 1.0)

    _SCHEMA = """
    CREATE TABLE IF NOT EXISTS entries (
        key        TEXT PRIMARY KEY,
        body       TEXT NOT NULL,
        digest     TEXT NOT NULL,
        provenance TEXT,
        created_at REAL NOT NULL,
        nbytes     INTEGER NOT NULL
    )
    """

    def __init__(
        self, path: Union[str, os.PathLike], site: str = "store"
    ) -> None:
        self.path = Path(path)
        self.site = site
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._conn: Optional[sqlite3.Connection] = None
        self._conn_pid: Optional[int] = None
        self._connect()  # fail fast on an unusable location

    def _connect(self) -> sqlite3.Connection:
        # One connection per process: a forked worker must not share the
        # parent's sqlite handle, so reopen lazily after a fork.
        if self._conn is None or self._conn_pid != os.getpid():
            conn = sqlite3.connect(
                str(self.path), timeout=30.0, isolation_level=None
            )
            conn.execute("PRAGMA journal_mode=WAL")
            conn.execute("PRAGMA synchronous=NORMAL")
            conn.execute("PRAGMA busy_timeout=30000")
            conn.execute(self._SCHEMA)
            self._conn = conn
            self._conn_pid = os.getpid()
        return self._conn

    def _retry_locked(self, label: str, attempt):
        """Run ``attempt()`` again after a lock-contention error, backing
        off through :data:`LOCKED_BACKOFF_S`; re-raise anything else (a
        real error — disk full, corrupt file — must not be retried into
        a hang) and the lock error itself once the schedule runs dry."""
        from repro import obs

        for delay in self.LOCKED_BACKOFF_S:
            try:
                return attempt()
            except sqlite3.OperationalError as exc:
                message = str(exc).lower()
                if "locked" not in message and "busy" not in message:
                    raise
                obs.get_metrics().counter("store.locked_retries").inc()
                obs.warn_once(
                    f"{self.site}.locked:{label}",
                    f"{self.site}: {self.path.name} is locked "
                    f"({exc}); retrying {label}",
                )
                time.sleep(delay)
        return attempt()

    def get(self, key: str) -> Optional[Any]:
        conn = self._connect()
        row = conn.execute(
            "SELECT body, digest FROM entries WHERE key = ?", (key,)
        ).fetchone()
        if row is None:
            return None
        try:
            body = json.loads(row[0])
        except ValueError:
            body = None
        if body is None or body_digest(body) != row[1]:
            self._heal(key, "digest mismatch")
            return None
        return body

    def _heal(self, key: str, problem: str) -> None:
        conn = self._connect()
        conn.execute("DELETE FROM entries WHERE key = ?", (key,))
        note_corruption(self.site, entry=key, problem=problem)

    def put(
        self,
        key: str,
        body: Any,
        provenance: Optional[Provenance] = None,
        label: str = "",
    ) -> None:
        blob = json.dumps(body, sort_keys=True)
        prov_blob = (
            json.dumps(provenance.to_json(), sort_keys=True)
            if provenance is not None
            else None
        )
        def attempt() -> None:
            conn = self._connect()
            conn.execute("BEGIN IMMEDIATE")
            try:
                conn.execute(
                    "INSERT OR REPLACE INTO entries "
                    "(key, body, digest, provenance, created_at, nbytes) "
                    "VALUES (?, ?, ?, ?, ?, ?)",
                    (
                        key,
                        blob,
                        body_digest(body),
                        prov_blob,
                        (
                            provenance.created_at
                            if provenance is not None and provenance.created_at
                            else time.time()
                        ),
                        len(blob),
                    ),
                )
                # Fault-injection hook: a ``kill`` here dies inside the
                # transaction — the chaos suite asserts no corrupt entry
                # becomes visible (the transaction simply never commits).
                maybe_fault(f"{self.site}.sqlite.put", label=label or key)
                conn.execute("COMMIT")
            except BaseException:
                try:
                    conn.execute("ROLLBACK")
                except sqlite3.Error:
                    pass
                raise

        self._retry_locked("put", attempt)

    def annotate(self, key: str, provenance: Provenance) -> None:
        blob = json.dumps(provenance.to_json(), sort_keys=True)
        self._retry_locked(
            "annotate",
            lambda: self._connect().execute(
                "UPDATE entries SET provenance = ? WHERE key = ?",
                (blob, key),
            ),
        )

    def provenance(self, key: str) -> Optional[Provenance]:
        conn = self._connect()
        row = conn.execute(
            "SELECT provenance FROM entries WHERE key = ?", (key,)
        ).fetchone()
        if row is None or row[0] is None:
            return None
        try:
            return Provenance.from_json(json.loads(row[0]))
        except ValueError:
            return None

    def delete(self, key: str) -> bool:
        cursor = self._retry_locked(
            "delete",
            lambda: self._connect().execute(
                "DELETE FROM entries WHERE key = ?", (key,)
            ),
        )
        return cursor.rowcount > 0

    def keys(self) -> list[str]:
        conn = self._connect()
        return [
            row[0]
            for row in conn.execute("SELECT key FROM entries ORDER BY key")
        ]

    def items(self) -> list[EntryInfo]:
        conn = self._connect()
        infos = []
        for key, prov_blob, created, nbytes in conn.execute(
            "SELECT key, provenance, created_at, nbytes FROM entries "
            "ORDER BY key"
        ):
            prov = None
            if prov_blob:
                try:
                    prov = Provenance.from_json(json.loads(prov_blob))
                except ValueError:
                    prov = None
            infos.append(
                EntryInfo(
                    key=key,
                    nbytes=int(nbytes),
                    created_at=float(created),
                    provenance=prov,
                )
            )
        return infos

    def close(self) -> None:
        if self._conn is not None and self._conn_pid == os.getpid():
            try:
                self._conn.close()
            except sqlite3.Error:
                pass
        self._conn = None
        self._conn_pid = None


def open_backend(
    path: Union[str, os.PathLike],
    site: str = "store",
    indent: Optional[int] = None,
):
    """Pick a backend from a path: ``*.sqlite``/``*.db`` files get the
    sqlite backend, anything else the directory backend — so every
    legacy ``--cache-dir`` flag transparently accepts both."""
    name = str(path)
    if name.endswith(SQLITE_SUFFIXES):
        return SqliteBackend(path, site=site)
    return DirBackend(path, site=site, indent=indent)
