"""``repro store`` — inspect and maintain unified-store locations.

Subcommands (all take a store PATH: a cache directory or a
``*.sqlite``/``*.db`` file):

- ``stats``   — entry counts, bytes, per-op breakdown, stale-vs-current
  engine split (``--format json`` for the CI artifact).
- ``query``   — list entries by ``--op``, ``--engine`` fingerprint,
  ``--since`` (epoch seconds or an age like ``7d``/``12h``/``30m``),
  ``--stale``/``--current``.
- ``gc``      — evict with ``--keep-latest N`` per op and/or
  ``--max-bytes BYTES`` (``--dry-run`` to preview).
- ``migrate`` — adopt a pre-store cache directory: annotate entries
  in place with inferred provenance (default) or copy into ``--into``.

Wired into the main parser by :func:`add_store_parser`; each handler is
a plain ``args -> int`` function so tests drive them directly.
"""

from __future__ import annotations

import functools
import json
import re
import sys
import time
from typing import Optional

__all__ = ["add_store_parser", "parse_since", "render_store_stats"]


def _pipesafe(fn):
    """Output piped into head/less and truncated is not an error."""

    @functools.wraps(fn)
    def wrapper(args) -> int:
        try:
            return fn(args)
        except BrokenPipeError:
            import os

            os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
            return 0

    return wrapper

_AGE = re.compile(r"(\d+(?:\.\d+)?)([smhdw])")

_AGE_SECONDS = {"s": 1.0, "m": 60.0, "h": 3600.0, "d": 86400.0, "w": 604800.0}


def parse_since(text: str) -> float:
    """``--since`` as a Unix timestamp: raw epoch seconds, or an age
    like ``7d`` / ``12h`` / ``30m`` counted back from now."""
    match = _AGE.fullmatch(text.strip())
    if match:
        return time.time() - float(match.group(1)) * _AGE_SECONDS[match.group(2)]
    try:
        return float(text)
    except ValueError:
        raise ValueError(
            f"bad --since {text!r}: epoch seconds or an age like 7d/12h/30m"
        )


def _open_store(path: str):
    from repro.store import Store

    return Store.open(path, site="store.cli")


def render_store_stats(path: str) -> str:
    """The text rendering of one store's stats (also used by
    ``repro stats --store``)."""
    store = _open_store(path)
    try:
        stats = store.stats()
    finally:
        store.close()
    lines = [
        f"store {path}: {stats['entries']} entries, {stats['bytes']} bytes"
    ]
    if stats["by_op"]:
        lines.append("by op:")
        for op, slot in stats["by_op"].items():
            lines.append(
                f"  {op:<16s} {slot['entries']:>6d} entries  "
                f"{slot['bytes']:>10d} bytes"
            )
    eng = stats["engine"]
    lines.append(
        f"engine {eng['current_fingerprint']}: "
        f"{eng['current']} current, {eng['stale']} stale"
    )
    if stats["session"]:
        lines.append("this session:")
        for name, value in stats["session"].items():
            lines.append(f"  {name:<24s} {value}")
    return "\n".join(lines)


@_pipesafe
def _cmd_store_stats(args) -> int:
    if args.format == "json":
        store = _open_store(args.path)
        try:
            stats = store.stats()
        finally:
            store.close()
        print(json.dumps(stats, indent=2, sort_keys=True))
        return 0
    print(render_store_stats(args.path))
    return 0


@_pipesafe
def _cmd_store_query(args) -> int:
    if args.stale and args.current:
        print("store query: --stale and --current conflict", file=sys.stderr)
        return 2
    try:
        since = parse_since(args.since) if args.since else None
    except ValueError as exc:
        print(f"store query: {exc}", file=sys.stderr)
        return 2
    stale: Optional[bool] = None
    if args.stale:
        stale = True
    elif args.current:
        stale = False
    store = _open_store(args.path)
    try:
        infos = store.query(
            op=args.op, engine=args.engine, since=since, stale=stale
        )
    finally:
        store.close()
    if args.format == "json":
        print(json.dumps(
            [
                {
                    "key": info.key,
                    "op": info.op,
                    "engine": info.engine,
                    "nbytes": info.nbytes,
                    "created_at": info.created_at,
                    "provenance": (
                        info.provenance.to_json()
                        if info.provenance is not None
                        else None
                    ),
                }
                for info in infos
            ],
            indent=2,
            sort_keys=True,
        ))
        return 0
    if not infos:
        print("no matching entries")
        return 0
    print(f"{'key':<44s} {'op':<16s} {'engine':<18s} "
          f"{'bytes':>8s}  created")
    for info in infos:
        created = (
            time.strftime("%Y-%m-%d %H:%M", time.localtime(info.created_at))
            if info.created_at
            else "?"
        )
        print(f"{info.key:<44s} {info.op:<16s} {info.engine:<18s} "
              f"{info.nbytes:>8d}  {created}")
    return 0


def _cmd_store_gc(args) -> int:
    from repro import obs

    if args.keep_latest is None and args.max_bytes is None:
        print(
            "store gc: nothing to do (pass --keep-latest and/or --max-bytes)",
            file=sys.stderr,
        )
        return 2
    store = _open_store(args.path)
    try:
        if args.dry_run:
            # Same selection logic, no deletion: run against a throwaway
            # view by asking gc for its victim list via a copy is not
            # possible backend-agnostically, so preview by re-deriving.
            infos = store.query()
            doomed = _preview_gc(infos, args.keep_latest, args.max_bytes)
            for key in doomed:
                print(f"would remove {key}")
            print(f"store gc: would remove {len(doomed)} entries (dry run)")
            return 0
        removed = store.gc(
            keep_latest=args.keep_latest, max_bytes=args.max_bytes
        )
    finally:
        store.close()
    for key in removed:
        print(f"removed {key}")
    print(f"store gc: removed {len(removed)} entries")
    obs.ledger_record(
        "store", action="gc", path=args.path, removed=len(removed)
    )
    return 0


def _preview_gc(infos, keep_latest, max_bytes) -> list[str]:
    doomed = {}
    if keep_latest is not None:
        per_op: dict[str, int] = {}
        for info in infos:
            per_op[info.op] = per_op.get(info.op, 0) + 1
            if per_op[info.op] > keep_latest:
                doomed[info.key] = info
    if max_bytes is not None:
        survivors = [i for i in infos if i.key not in doomed]
        total = sum(i.nbytes for i in survivors)
        for info in reversed(survivors):
            if total <= max_bytes:
                break
            doomed[info.key] = info
            total -= info.nbytes
    return sorted(doomed)


def _cmd_store_migrate(args) -> int:
    from repro import obs
    from repro.store.migrate import migrate_path

    try:
        report = migrate_path(args.path, into=args.into)
    except FileNotFoundError as exc:
        print(f"store migrate: {exc}", file=sys.stderr)
        return 2
    if args.format == "json":
        print(json.dumps(report, indent=2, sort_keys=True))
    else:
        where = f" into {report['into']}" if report["into"] else " in place"
        print(
            f"store migrate: {report['migrated']} entries migrated{where} "
            f"({report['already']} already had provenance, "
            f"{report['quarantined']} quarantined, "
            f"{report['unrecognised']} unrecognised)"
        )
        for op, n in sorted(report["by_op"].items()):
            print(f"  {op:<16s} {n}")
    obs.ledger_record(
        "store",
        action="migrate",
        path=report["source"],
        into=report["into"],
        migrated=report["migrated"],
        quarantined=report["quarantined"],
    )
    return 0


def add_store_parser(sub, parents=()) -> None:
    """Attach the ``store`` subcommand group to the main CLI parser."""
    p_store = sub.add_parser(
        "store",
        help="inspect and maintain the unified provenance store",
        parents=list(parents),
    )
    store_sub = p_store.add_subparsers(dest="store_command", required=True)

    p_st = store_sub.add_parser(
        "stats", help="entry counts, bytes, per-op and engine breakdown",
        parents=list(parents),
    )
    p_st.add_argument("path", help="store directory or *.sqlite file")
    p_st.add_argument("--format", choices=("text", "json"), default="text")
    p_st.set_defaults(func=_cmd_store_stats)

    p_q = store_sub.add_parser(
        "query", help="list entries with provenance filters",
        parents=list(parents),
    )
    p_q.add_argument("path", help="store directory or *.sqlite file")
    p_q.add_argument("--op", default=None, help="op name (e.g. execute)")
    p_q.add_argument(
        "--engine", default=None, metavar="FP",
        help="exact engine fingerprint",
    )
    p_q.add_argument(
        "--since", default=None,
        help="epoch seconds or an age like 7d/12h/30m",
    )
    p_q.add_argument(
        "--stale", action="store_true",
        help="only entries NOT produced by the current engine",
    )
    p_q.add_argument(
        "--current", action="store_true",
        help="only entries produced by the current engine",
    )
    p_q.add_argument("--format", choices=("text", "json"), default="text")
    p_q.set_defaults(func=_cmd_store_query)

    p_gc = store_sub.add_parser(
        "gc", help="evict entries by per-op count and/or byte budget",
        parents=list(parents),
    )
    p_gc.add_argument("path", help="store directory or *.sqlite file")
    p_gc.add_argument(
        "--keep-latest", type=int, default=None, metavar="N",
        help="keep only the N newest entries per op",
    )
    p_gc.add_argument(
        "--max-bytes", type=int, default=None, metavar="BYTES",
        help="evict oldest-first until the store fits BYTES",
    )
    p_gc.add_argument(
        "--dry-run", action="store_true", help="print victims, delete nothing"
    )
    p_gc.set_defaults(func=_cmd_store_gc)

    p_mig = store_sub.add_parser(
        "migrate",
        help="adopt a pre-store cache dir (annotate in place or copy)",
        parents=list(parents),
    )
    p_mig.add_argument("path", help="legacy cache directory")
    p_mig.add_argument(
        "--into", default=None, metavar="PATH",
        help="copy into this store (dir or *.sqlite) instead of in-place",
    )
    p_mig.add_argument("--format", choices=("text", "json"), default="text")
    p_mig.set_defaults(func=_cmd_store_migrate)
