"""The unified content-addressed store (DESIGN.md §16).

One :class:`Store` instance fronts one backend (directory, sqlite, or
in-memory) and is what every former cache in the repo now talks to: the
pipeline's ``ArtifactCache``, the experiment harness's simulation-result
cache, and the native ``.so`` cache.  It adds, on top of the raw
backend:

- hit/miss/put counters (``store.hits`` / ``store.misses`` /
  ``store.puts``) through :mod:`repro.obs`, shared by every cache;
- provenance-aware :meth:`query` (by op, engine fingerprint, age,
  staleness vs. the current engine);
- :meth:`gc` with ``keep_latest``-per-op and ``max_bytes`` budgets;
- :meth:`stats` for ``repro store stats`` / ``repro stats --store``.

Keys are caller-chosen strings: each legacy cache keeps its historical
key scheme (and therefore its warm on-disk entries) and simply routes
reads/writes through here.  New code should prefer the
:func:`repro.store.ops.op` decorator, which derives keys from declared
inputs automatically.
"""

from __future__ import annotations

import os
from typing import Any, Optional, Union

from repro.store.backend import EntryInfo, MemoryBackend, open_backend
from repro.store.fingerprint import engine_fingerprint
from repro.store.provenance import Provenance

__all__ = ["Store"]


class Store:
    """Content-addressed key/value store with provenance and healing."""

    def __init__(self, backend: Any) -> None:
        self.backend = backend

    @classmethod
    def open(
        cls,
        path: Union[str, os.PathLike],
        site: str = "store",
        indent: Optional[int] = None,
    ) -> "Store":
        """Open a store at ``path`` — a directory, or a ``*.sqlite`` /
        ``*.db`` file for the sqlite backend."""
        return cls(open_backend(path, site=site, indent=indent))

    @classmethod
    def in_memory(cls) -> "Store":
        return cls(MemoryBackend())

    # -- the core five -------------------------------------------------

    def get(self, key: str, default: Any = None) -> Any:
        """Digest-verified read; corrupt entries heal and count a miss."""
        from repro import obs

        body = self.backend.get(key)
        if body is None:
            obs.get_metrics().counter("store.misses").inc()
            return default
        obs.get_metrics().counter("store.hits").inc()
        return body

    def put(
        self,
        key: str,
        body: Any,
        provenance: Optional[Provenance] = None,
        label: str = "",
    ) -> None:
        from repro import obs

        self.backend.put(key, body, provenance=provenance, label=label)
        obs.get_metrics().counter("store.puts").inc()

    def has(self, key: str) -> bool:
        return self.backend.get(key) is not None

    def delete(self, key: str) -> bool:
        return self.backend.delete(key)

    def query(
        self,
        op: Optional[str] = None,
        engine: Optional[str] = None,
        since: Optional[float] = None,
        stale: Optional[bool] = None,
        current_engine: Optional[str] = None,
    ) -> list[EntryInfo]:
        """Entries matching every given filter, newest first.

        ``stale=True`` selects entries whose recorded engine fingerprint
        differs from ``current_engine`` (default: the live
        :func:`engine_fingerprint`) — including pre-provenance entries
        recorded as ``unknown``; ``stale=False`` selects the current
        ones.  ``since`` is a Unix timestamp lower bound.
        """
        if stale is not None and current_engine is None:
            current_engine = engine_fingerprint()
        found = []
        for info in self.backend.items():
            if op is not None and info.op != op:
                continue
            if engine is not None and info.engine != engine:
                continue
            if since is not None and info.created_at < since:
                continue
            if stale is not None and (info.engine != current_engine) != stale:
                continue
            found.append(info)
        found.sort(key=lambda info: (-info.created_at, info.key))
        return found

    # -- maintenance ---------------------------------------------------

    def gc(
        self,
        keep_latest: Optional[int] = None,
        max_bytes: Optional[int] = None,
    ) -> list[str]:
        """Evict entries; returns the deleted keys.

        ``keep_latest=N`` keeps only the N newest entries *per op*
        (pre-provenance entries group under op ``?``); ``max_bytes``
        then evicts oldest-first until the remaining total fits the
        budget.  With no arguments this is a no-op — ``gc`` never
        guesses a policy.
        """
        infos = self.query()  # newest first
        doomed: dict[str, EntryInfo] = {}
        if keep_latest is not None:
            per_op: dict[str, int] = {}
            for info in infos:
                seen = per_op.get(info.op, 0) + 1
                per_op[info.op] = seen
                if seen > keep_latest:
                    doomed[info.key] = info
        if max_bytes is not None:
            survivors = [i for i in infos if i.key not in doomed]
            total = sum(i.nbytes for i in survivors)
            for info in reversed(survivors):  # oldest first
                if total <= max_bytes:
                    break
                doomed[info.key] = info
                total -= info.nbytes
        removed = []
        for key in sorted(doomed):
            if self.backend.delete(key):
                removed.append(key)
        return removed

    def stats(self, current_engine: Optional[str] = None) -> dict:
        """Aggregate view for ``repro store stats``: entry counts and
        bytes overall and per op, stale-vs-current engine breakdown,
        and this process's hit/miss/put/heal counters."""
        from repro import obs

        if current_engine is None:
            current_engine = engine_fingerprint()
        infos = self.backend.items()
        by_op: dict[str, dict[str, int]] = {}
        current = stale = 0
        for info in infos:
            slot = by_op.setdefault(info.op, {"entries": 0, "bytes": 0})
            slot["entries"] += 1
            slot["bytes"] += info.nbytes
            if info.engine == current_engine:
                current += 1
            else:
                stale += 1
        counters = obs.get_metrics().snapshot().get("counters", {})
        return {
            "entries": len(infos),
            "bytes": sum(info.nbytes for info in infos),
            "by_op": {op: by_op[op] for op in sorted(by_op)},
            "engine": {
                "current_fingerprint": current_engine,
                "current": current,
                "stale": stale,
            },
            "session": {
                name: counters[name]
                for name in sorted(counters)
                if name.startswith("store.")
            },
        }

    # -- provenance plumbing -------------------------------------------

    def provenance(self, key: str) -> Optional[Provenance]:
        return self.backend.provenance(key)

    def annotate(self, key: str, provenance: Provenance) -> None:
        """Attach provenance to an existing entry without rewriting its
        value bytes (how ``repro store migrate`` upgrades in place)."""
        self.backend.annotate(key, provenance)

    def keys(self) -> list[str]:
        return self.backend.keys()

    def items(self) -> list[EntryInfo]:
        return self.backend.items()

    def close(self) -> None:
        self.backend.close()

    def __enter__(self) -> "Store":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()
