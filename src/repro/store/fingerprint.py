"""The one fingerprint module (DESIGN.md §16).

Every cache key in the system folds in a fingerprint of the machinery
that produced the cached value, so editing that machinery transparently
invalidates exactly the entries it could have changed.  Before the
unified store, three near-identical implementations lived in
``experiments/harness.py``, ``pipeline/cache.py``, and
``codegen/build.py``; this module is now the single source of truth —
the old import paths re-export from here.

- :func:`engine_fingerprint` — a digest of every ``repro`` source file a
  simulation or compile result depends on (everything outside
  ``experiments/``, which merely arranges tasks and renders results),
  plus the C toolchain identity.  Editing a figure script keeps caches
  warm; touching the tracer, caches, cost model, codes, schedules,
  mappings, or upgrading/losing the compiler invalidates every entry.
- :func:`toolchain_fingerprint` — the C compiler identity (resolved
  path + ``--version`` banner + flag set), or ``"none"`` when native
  compilation is unavailable.
- :func:`content_hash` — the canonical content hash of any
  JSON-serialisable payload (``sha256`` over ``json.dumps(...,
  sort_keys=True)``), the idiom every key scheme and digest wrapper in
  the repo is built from.  Its exact byte format is pinned by
  ``tests/store/test_fingerprint.py``: changing it silently would
  invalidate every on-disk cache in the field.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import Any, Optional

__all__ = [
    "canonical_json",
    "content_hash",
    "engine_fingerprint",
    "reset_engine_fingerprint",
    "toolchain_fingerprint",
]


def canonical_json(payload: Any) -> bytes:
    """The canonical serialised form content hashes are computed over."""
    return json.dumps(payload, sort_keys=True).encode()


def content_hash(payload: Any, length: int = 64) -> str:
    """Canonical content hash of a JSON-serialisable payload.

    ``length`` truncates the hex digest (64 = full sha256); the format
    (sort_keys JSON, sha256) is pinned — see the module docstring.
    """
    return hashlib.sha256(canonical_json(payload)).hexdigest()[:length]


def toolchain_fingerprint() -> str:
    """The C toolchain identity folded into the engine fingerprint.

    ``"none"`` when no compiler is available — so gaining or losing a
    toolchain also (correctly) invalidates cached artifacts, whose
    execute stage records which engine actually ran.  Delegates to
    :mod:`repro.codegen.build`, which owns toolchain discovery.
    """
    from repro.codegen import build

    return build.toolchain_fingerprint()


_ENGINE_FINGERPRINT: Optional[str] = None


def reset_engine_fingerprint() -> None:
    """Forget the memoised engine fingerprint (tests flip toolchains)."""
    global _ENGINE_FINGERPRINT
    _ENGINE_FINGERPRINT = None


def engine_fingerprint() -> str:
    """Digest of every source file a cached result depends on.

    Hashes all of :mod:`repro` except ``experiments/`` plus the C
    toolchain identity (via :mod:`repro.codegen.build`, looked up at
    call time so tests can monkeypatch it).  Memoised per process;
    :func:`reset_engine_fingerprint` (or
    :func:`repro.codegen.build.reset_toolchain_cache`) forgets it.
    """
    global _ENGINE_FINGERPRINT
    if _ENGINE_FINGERPRINT is None:
        import repro
        from repro.codegen import build

        root = Path(repro.__file__).parent
        digest = hashlib.sha256()
        for path in sorted(root.rglob("*.py")):
            rel = path.relative_to(root)
            if rel.parts[0] == "experiments":
                continue
            digest.update(str(rel).encode())
            digest.update(b"\0")
            digest.update(path.read_bytes())
            digest.update(b"\0")
        digest.update(b"toolchain:")
        digest.update(build.toolchain_fingerprint().encode())
        _ENGINE_FINGERPRINT = digest.hexdigest()[:16]
    return _ENGINE_FINGERPRINT
