"""Migrate pre-store cache directories into the unified store.

The three legacy caches share the digest-wrapper file format but carry
no provenance.  Migration is **in place by default**: every entry keeps
its exact filename and bytes (so warm lookups through the historical
key schemes keep hitting) and gains a ``.prov/`` sidecar whose op is
inferred from the filename:

- ``<64 hex>.json``            → ``simulate``   (harness result cache)
- ``<stage>-<24 hex>.json``    → ``<stage>``    (pipeline artifact cache)
- ``run-<24 hex>.so``          → ``compile-so`` (native object cache;
  a ``run-<key>.json`` meta entry is created naming the object, since
  a bare ``.so`` cannot carry a digest wrapper)

Migrated provenance records ``engine="unknown"`` — the producing
fingerprint is unrecoverable — so they answer ``repro store query
--stale`` until recomputed under the current engine.  With ``--into``,
entries are instead copied (same keys, re-wrapped bodies) into another
store, which may be a sqlite file: the supported path for moving a
fleet of workers onto one shared database.
"""

from __future__ import annotations

import json
import os
import re
from pathlib import Path
from typing import Optional, Union

from repro.resilience.cachesafe import (
    CACHE_WRAPPER_SCHEMA,
    body_digest,
    quarantine_file,
)
from repro.store.backend import DirBackend, open_backend
from repro.store.provenance import Provenance

__all__ = ["infer_op", "migrate_path"]

_SIM_KEY = re.compile(r"[0-9a-f]{64}")
_STAGE_KEY = re.compile(r"(.+)-[0-9a-f]{24}")
_SO_KEY = re.compile(r"run-[0-9a-f]{24}")


def infer_op(stem: str) -> Optional[str]:
    """The op a legacy cache filename implies, or None if unrecognised."""
    if _SIM_KEY.fullmatch(stem):
        return "simulate"
    if _SO_KEY.fullmatch(stem):
        return "compile-so"
    match = _STAGE_KEY.fullmatch(stem)
    if match:
        return match.group(1)
    return None


def migrate_path(
    source: Union[str, os.PathLike],
    into: Optional[Union[str, os.PathLike]] = None,
) -> dict:
    """Migrate one legacy cache directory; returns a report dict.

    In place (default): annotate every recognised entry with inferred
    provenance, skipping entries that already have some (idempotent).
    With ``into``: copy entries (same keys) into the target store path
    — a directory or a ``*.sqlite``/``*.db`` file.  Unreadable or
    digest-mismatched entries are quarantined, never migrated.
    """
    source = Path(source)
    if not source.is_dir():
        raise FileNotFoundError(f"not a cache directory: {source}")
    annotator = DirBackend(source, site="store.migrate")
    target = (
        open_backend(into, site="store.migrate") if into is not None else None
    )
    report = {
        "source": str(source),
        "into": str(into) if into is not None else None,
        "migrated": 0,
        "already": 0,
        "quarantined": 0,
        "unrecognised": 0,
        "by_op": {},
    }

    def record(op: str) -> None:
        report["migrated"] += 1
        report["by_op"][op] = report["by_op"].get(op, 0) + 1

    for path in sorted(source.glob("*.json")):
        stem = path.stem
        op = infer_op(stem)
        if op is None:
            report["unrecognised"] += 1
            continue
        body = _verified_body(path)
        if body is None:
            report["quarantined"] += 1
            continue
        if target is None and annotator.provenance(stem) is not None:
            report["already"] += 1
            continue
        prov = Provenance.now(
            op=op,
            engine="unknown",
            extra={"migrated_from": str(source)},
        )
        if target is not None:
            target.put(stem, body, provenance=prov, label=stem)
        else:
            annotator.annotate(stem, prov)
        record(op)

    for path in sorted(source.glob("*.so")):
        stem = path.stem
        if not _SO_KEY.fullmatch(stem):
            report["unrecognised"] += 1
            continue
        meta = {"file": path.name, "nbytes": path.stat().st_size}
        prov = Provenance.now(
            op="compile-so",
            engine="unknown",
            extra={"migrated_from": str(source)},
        )
        if target is None:
            if annotator.provenance(stem) is not None:
                report["already"] += 1
                continue
            annotator.put(stem, meta, provenance=prov, label=stem)
        else:
            target.put(stem, meta, provenance=prov, label=stem)
        record("compile-so")

    if target is not None:
        target.close()
    return report


def _verified_body(path: Path):
    """The digest-verified body of a legacy entry, quarantining failures
    (same policy as a read through the store, without counting a miss)."""
    try:
        wrapper = json.loads(path.read_text())
    except (OSError, ValueError) as exc:
        quarantine_file(path, site="store.migrate", problem=f"bad JSON: {exc}")
        return None
    if (
        not isinstance(wrapper, dict)
        or wrapper.get("schema") != CACHE_WRAPPER_SCHEMA
        or "digest" not in wrapper
        or "body" not in wrapper
    ):
        quarantine_file(path, site="store.migrate", problem="missing wrapper")
        return None
    if body_digest(wrapper["body"]) != wrapper["digest"]:
        quarantine_file(path, site="store.migrate", problem="digest mismatch")
        return None
    return wrapper["body"]
