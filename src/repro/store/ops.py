"""``@op(version=...)`` — declarative memoization over the unified store.

The legacy caches hand-roll their key schemes (and keep them, for warm
on-disk compatibility); new code declares an op instead:

    from repro.store import op

    @op(version=2)
    def dependence_distance(code, sizes):
        ...

Calling the wrapped function computes a content-addressed key from the
op name, its declared ``version``, the live engine fingerprint, and the
JSON-canonicalised arguments; a hit returns the stored value, a miss
runs the function, stores the result with a full :class:`Provenance`
record, and returns it.  Bumping ``version`` is the op author's manual
invalidation lever; editing any engine source file invalidates
automatically through the fingerprint — the same surgical-invalidation
contract the pipeline's chained stage keys provide.

Results must be JSON-serialisable (the store's integrity digest is
computed over canonical JSON).  The wrapper exposes:

- ``fn.key(*args, **kwargs)`` — the key a call would use;
- ``fn.uncached(*args, **kwargs)`` — bypass the store entirely;
- ``fn.op_name`` / ``fn.op_version`` — the declared identity.

Ops write to an explicit ``store=`` if given, else the process-wide
default store (:func:`set_default_store`; an in-memory store until one
is configured, or the directory/sqlite path named by ``$REPRO_STORE``).
"""

from __future__ import annotations

import functools
import os
import time
from typing import Any, Callable, Optional

from repro.store.core import Store
from repro.store.fingerprint import content_hash, engine_fingerprint
from repro.store.provenance import Provenance

__all__ = ["op", "get_default_store", "set_default_store"]

#: Environment variable naming the default store location.
STORE_ENV = "REPRO_STORE"

_DEFAULT_STORE: Optional[Store] = None


def set_default_store(store: Optional[Store]) -> None:
    """Install (or with ``None``, forget) the process-wide op store."""
    global _DEFAULT_STORE
    _DEFAULT_STORE = store


def get_default_store() -> Store:
    """The process-wide op store, creating it on first use: the path in
    ``$REPRO_STORE`` if set, else an in-memory store."""
    global _DEFAULT_STORE
    if _DEFAULT_STORE is None:
        configured = os.environ.get(STORE_ENV)
        if configured:
            _DEFAULT_STORE = Store.open(configured, site="ops")
        else:
            _DEFAULT_STORE = Store.in_memory()
    return _DEFAULT_STORE


def op(
    name: Optional[str] = None,
    version: int = 1,
    store: Optional[Store] = None,
) -> Callable:
    """Memoize a function through the unified store with provenance."""

    def decorate(fn: Callable) -> Callable:
        op_name = name or fn.__name__

        def call_key(*args: Any, **kwargs: Any) -> str:
            payload = {
                "op": op_name,
                "version": version,
                "engine": engine_fingerprint(),
                "args": list(args),
                "kwargs": dict(sorted(kwargs.items())),
            }
            return f"{op_name}-{content_hash(payload, length=24)}"

        @functools.wraps(fn)
        def wrapper(*args: Any, **kwargs: Any) -> Any:
            target = store if store is not None else get_default_store()
            key = call_key(*args, **kwargs)
            sentinel = object()
            hit = target.get(key, default=sentinel)
            if hit is not sentinel:
                return hit
            started = time.monotonic()
            value = fn(*args, **kwargs)
            wall = time.monotonic() - started
            prov = Provenance.now(
                op=op_name,
                op_version=version,
                inputs={
                    "call": content_hash(
                        {"args": list(args),
                         "kwargs": dict(sorted(kwargs.items()))}
                    )
                },
                engine=engine_fingerprint(),
                wall_s=round(wall, 6),
            )
            target.put(key, value, provenance=prov, label=op_name)
            return value

        wrapper.key = call_key
        wrapper.uncached = fn
        wrapper.op_name = op_name
        wrapper.op_version = version
        return wrapper

    return decorate
