"""Provenance records: who computed a stored value, from what, with what.

Every entry the unified store holds can carry a :class:`Provenance`
record (schema v1, DESIGN.md §16): the op that produced it, the op's
declared version, content hashes of its inputs, the engine/toolchain
fingerprint it ran under, the spec hash and machine config where
applicable, when it was created, and how long it took.  Provenance is
*advisory metadata*: it never participates in the value's integrity
digest, so legacy entries without provenance remain first-class cache
hits — they merely answer ``repro store query`` as ``engine=unknown``.
"""

from __future__ import annotations

import time
from dataclasses import asdict, dataclass, field
from typing import Any, Mapping, Optional

__all__ = ["PROVENANCE_SCHEMA", "Provenance"]

#: Schema version stamped into every serialised record.
PROVENANCE_SCHEMA = 1


@dataclass(frozen=True)
class Provenance:
    """Everything known about how one stored value came to be."""

    #: Operation name (pipeline stage, "simulate", "compile-so", ...).
    op: str
    #: Declared version of the op's implementation; bumping it is the
    #: op author's way of invalidating old results by hand.
    op_version: int = 1
    #: Named content hashes of the inputs (parent keys, payload hashes).
    inputs: dict[str, str] = field(default_factory=dict)
    #: Engine/toolchain fingerprint the op ran under
    #: (:func:`repro.store.fingerprint.engine_fingerprint` or a
    #: toolchain fingerprint for native objects; "unknown" for entries
    #: migrated from pre-provenance caches).
    engine: str = "unknown"
    #: Content hash of the spec that drove the compile, if any.
    spec: Optional[str] = None
    #: Machine config name the result was simulated on, if any.
    machine: Optional[str] = None
    #: Unix timestamp of creation.
    created_at: float = 0.0
    #: Wall-clock seconds the op spent producing the value.
    wall_s: Optional[float] = None
    #: Free-form extras (task identity, labels, sizes...).
    extra: dict = field(default_factory=dict)

    @classmethod
    def now(cls, op: str, **kwargs: Any) -> "Provenance":
        """A record stamped with the current time."""
        kwargs.setdefault("created_at", round(time.time(), 3))
        return cls(op=op, **kwargs)

    def to_json(self) -> dict:
        body = asdict(self)
        body["schema"] = PROVENANCE_SCHEMA
        return body

    @classmethod
    def from_json(cls, data: Optional[Mapping]) -> Optional["Provenance"]:
        """Rebuild a record; tolerant of missing/extra fields and of
        ``None`` (legacy entries), which round-trips to ``None``."""
        if not isinstance(data, Mapping):
            return None
        fields = {
            "op": str(data.get("op", "?")),
            "op_version": int(data.get("op_version", 1) or 1),
            "inputs": dict(data.get("inputs") or {}),
            "engine": str(data.get("engine", "unknown") or "unknown"),
            "spec": data.get("spec"),
            "machine": data.get("machine"),
            "created_at": float(data.get("created_at", 0.0) or 0.0),
            "wall_s": data.get("wall_s"),
            "extra": dict(data.get("extra") or {}),
        }
        try:
            return cls(**fields)
        except (TypeError, ValueError):
            return None
