"""Low-level integer, lattice, and geometric utilities.

These are the mathematical substrates the UOV machinery is built on:

- :mod:`repro.util.intmath` — gcd / extended gcd, unimodular completion.
- :mod:`repro.util.vectors` — operations on integer vectors (tuples).
- :mod:`repro.util.polyhedron` — convex polytopes: vertices, projections,
  widths; used for ISG bounds and storage metrics.
- :mod:`repro.util.priorityqueue` — a stable priority queue with lazy
  reprioritisation, used by the branch-and-bound UOV search.
"""

from repro.util.intmath import extended_gcd, unimodular_completion, vector_gcd
from repro.util.polyhedron import Polytope
from repro.util.priorityqueue import PriorityQueue
from repro.util.vectors import (
    add,
    dot,
    is_lex_positive,
    neg,
    norm2,
    scale,
    sub,
)

__all__ = [
    "extended_gcd",
    "unimodular_completion",
    "vector_gcd",
    "Polytope",
    "PriorityQueue",
    "add",
    "sub",
    "neg",
    "scale",
    "dot",
    "norm2",
    "is_lex_positive",
]
