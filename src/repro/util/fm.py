"""Exact integer linear arithmetic by parametric Fourier-Motzkin.

This is the decision engine behind the symbolic (size-parametric) UOV
certifier (:mod:`repro.analysis.symcert`).  It answers one question
exactly: *does an integer point satisfy this affine constraint system?*
— where the system may mention symbolic size parameters (``N``, ``T``)
simply as additional variables that are eliminated last (or kept, to
project the system onto its parameters).

The algorithm is the Omega-test flavour of Fourier-Motzkin elimination
(Pugh, CACM 1992):

- **Equalities** are removed first, exactly: GCD-normalise (an equality
  whose coefficient gcd does not divide its constant is infeasible),
  substitute variables with unit coefficients, and break non-unit
  coefficients with the ``mod-hat`` trick (a fresh variable whose
  coefficient is provably unit, shrinking the others).
- **Inequalities** eliminate one variable per step.  Each lower/upper
  bound pair ``a x >= -r`` / ``b x <= s`` contributes the *real shadow*
  ``a s + b r >= 0`` (exact rationally) and the *dark shadow*
  ``a s + b r >= (a-1)(b-1)`` (any integer point of which lifts to an
  integer ``x``).  When the two disagree the residual *splinters*
  ``a x = -r + i`` for the finitely many ``i`` the gap admits are
  checked recursively, so :meth:`System.is_empty` is an exact integer
  decision procedure, not an approximation.
- **GCD tightening** normalises every derived inequality
  (``g x >= c  =>  x >= ceil(c/g)``), which is what makes the dark
  shadow bite in practice.

:meth:`System.project` keeps a chosen variable subset (typically the
size parameters) and eliminates the rest — with the real shadow for a
sound over-approximation of the satisfiable parameter set, or the dark
shadow for an under-approximation every point of which is guaranteed to
lift to a full integer solution.  :meth:`System.sample_point` produces a
concrete integer witness (used for certificate rows and counterexample
sizes) and :meth:`System.sample_rational` is the rational-vertex
fallback when the integer sampling budget runs out.

Every elimination step can be recorded into a :class:`Trace` — the
auditable proof object embedded in serialized symbolic certificates.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction
from math import ceil, floor, gcd
from typing import Iterable, Mapping, Optional, Sequence

__all__ = [
    "LinExpr",
    "Constraint",
    "System",
    "Trace",
    "FMBudgetExceeded",
]

#: Hard ceilings keeping the exact procedure from blowing up on
#: adversarial systems; realistic stencil systems stay far below them.
_MAX_CONSTRAINTS = 4000
_MAX_SPLINTER_DEPTH = 12
_SAMPLE_TRIES_PER_VAR = 512


class FMBudgetExceeded(RuntimeError):
    """The elimination exceeded its safety ceilings (degrade, don't trust)."""


# -- linear expressions -------------------------------------------------------


@dataclass(frozen=True)
class LinExpr:
    """Integer-coefficient affine form ``sum(terms) + const``."""

    terms: tuple[tuple[str, int], ...] = ()
    const: int = 0

    @staticmethod
    def of(coeffs: Mapping[str, int], const: int = 0) -> "LinExpr":
        items = tuple(sorted((v, int(c)) for v, c in coeffs.items() if c != 0))
        return LinExpr(items, int(const))

    @staticmethod
    def var(name: str, coeff: int = 1) -> "LinExpr":
        return LinExpr.of({name: coeff})

    @staticmethod
    def constant(value: int) -> "LinExpr":
        return LinExpr((), int(value))

    def coeff(self, name: str) -> int:
        for v, c in self.terms:
            if v == name:
                return c
        return 0

    @property
    def variables(self) -> tuple[str, ...]:
        return tuple(v for v, _ in self.terms)

    def is_constant(self) -> bool:
        return not self.terms

    def scaled(self, factor: int) -> "LinExpr":
        if factor == 0:
            return LinExpr()
        return LinExpr(
            tuple((v, c * factor) for v, c in self.terms), self.const * factor
        )

    def plus(self, other: "LinExpr") -> "LinExpr":
        coeffs = dict(self.terms)
        for v, c in other.terms:
            coeffs[v] = coeffs.get(v, 0) + c
        return LinExpr.of(coeffs, self.const + other.const)

    def drop(self, name: str) -> "LinExpr":
        return LinExpr(
            tuple((v, c) for v, c in self.terms if v != name), self.const
        )

    def substitute(self, name: str, replacement: "LinExpr") -> "LinExpr":
        """``self`` with ``name := replacement`` (integer coefficients)."""
        a = self.coeff(name)
        if a == 0:
            return self
        return self.drop(name).plus(replacement.scaled(a))

    def evaluate(self, env: Mapping[str, int]) -> int:
        return self.const + sum(c * env[v] for v, c in self.terms)

    def evaluate_rational(self, env: Mapping[str, Fraction]) -> Fraction:
        return Fraction(self.const) + sum(
            (Fraction(c) * env[v] for v, c in self.terms), Fraction(0)
        )

    def __str__(self) -> str:
        parts: list[str] = []
        for v, c in self.terms:
            if c == 1:
                parts.append(f"+ {v}")
            elif c == -1:
                parts.append(f"- {v}")
            elif c < 0:
                parts.append(f"- {-c}*{v}")
            else:
                parts.append(f"+ {c}*{v}")
        if self.const or not parts:
            parts.append(
                f"+ {self.const}" if self.const >= 0 else f"- {-self.const}"
            )
        text = " ".join(parts)
        return text[2:] if text.startswith("+ ") else text


@dataclass(frozen=True)
class Constraint:
    """``expr >= 0`` (inequality) or ``expr == 0`` (equality)."""

    expr: LinExpr
    equality: bool = False

    def __str__(self) -> str:
        op = "==" if self.equality else ">="
        return f"{self.expr} {op} 0"

    def to_json(self) -> dict:
        return {
            "coeffs": {v: c for v, c in self.expr.terms},
            "const": self.expr.const,
            "op": "==" if self.equality else ">=",
        }


@dataclass
class Trace:
    """Auditable record of one elimination run (the proof object)."""

    steps: list[dict] = field(default_factory=list)

    def record(self, op: str, **detail: object) -> None:
        self.steps.append({"op": op, **detail})

    def to_json(self) -> list[dict]:
        return list(self.steps)


# -- normalisation helpers ----------------------------------------------------


def _floor_div(a: int, b: int) -> int:
    return a // b  # python's // is floor division for ints


def _mod_hat(a: int, m: int) -> int:
    """``a`` reduced mod ``m`` into the balanced range ``(-m/2, m/2]``."""
    r = a - m * _floor_div(2 * a + m, 2 * m)
    return r


class _Infeasible(Exception):
    """A constraint normalised to an impossible constant fact."""


def _normalize(constraint: Constraint) -> Optional[Constraint]:
    """GCD-tighten; ``None`` for trivially-true, raise for trivially-false."""
    expr = constraint.expr
    if expr.is_constant():
        if constraint.equality:
            if expr.const != 0:
                raise _Infeasible()
        elif expr.const < 0:
            raise _Infeasible()
        return None
    g = 0
    for _, c in expr.terms:
        g = gcd(g, abs(c))
    if constraint.equality:
        if expr.const % g != 0:
            raise _Infeasible()
        if g > 1:
            expr = LinExpr(
                tuple((v, c // g) for v, c in expr.terms), expr.const // g
            )
        return Constraint(expr, equality=True)
    if g > 1:
        # g*x + c >= 0  <=>  x >= ceil(-c/g)  <=>  x + floor(c/g) >= 0.
        expr = LinExpr(
            tuple((v, c // g) for v, c in expr.terms), _floor_div(expr.const, g)
        )
    return Constraint(expr)


# -- the system ---------------------------------------------------------------


class System:
    """An affine integer constraint system over named variables.

    Immutable in practice: every operation returns a new system.  The
    variable set is inferred from the constraints; "parameters" are not
    special — they are whichever variables the caller keeps.
    """

    def __init__(self, constraints: Iterable[Constraint] = ()):
        self._constraints: tuple[Constraint, ...] = tuple(constraints)
        if len(self._constraints) > _MAX_CONSTRAINTS:
            raise FMBudgetExceeded(
                f"{len(self._constraints)} constraints exceeds the "
                f"{_MAX_CONSTRAINTS} ceiling"
            )

    # -- construction ------------------------------------------------------

    @staticmethod
    def of(*constraints: Constraint) -> "System":
        return System(constraints)

    def and_also(self, *constraints: Constraint) -> "System":
        return System(self._constraints + tuple(constraints))

    # -- queries -----------------------------------------------------------

    @property
    def constraints(self) -> tuple[Constraint, ...]:
        return self._constraints

    @property
    def variables(self) -> tuple[str, ...]:
        seen: dict[str, None] = {}
        for con in self._constraints:
            for v in con.expr.variables:
                seen.setdefault(v)
        return tuple(sorted(seen))

    def __len__(self) -> int:
        return len(self._constraints)

    def __str__(self) -> str:
        return "{ " + "; ".join(str(c) for c in self._constraints) + " }"

    def to_json(self) -> list[dict]:
        return [c.to_json() for c in self._constraints]

    def satisfies(self, point: Mapping[str, int]) -> bool:
        """Exact membership check of a concrete integer point."""
        for con in self._constraints:
            value = con.expr.evaluate(point)
            if con.equality:
                if value != 0:
                    return False
            elif value < 0:
                return False
        return True

    # -- equality elimination ----------------------------------------------

    def _eliminated_equalities(
        self,
        trace: Optional[Trace] = None,
        keep: frozenset[str] = frozenset(),
    ) -> tuple[list[Constraint], list[tuple[str, LinExpr]]]:
        """Inequality-only constraints plus the substitution stack.

        Raises :class:`_Infeasible` when an equality is unsatisfiable over
        the integers (GCD test).  The substitution stack maps each
        eliminated variable to the expression (over the surviving
        variables) that reconstructs it.  Variables in ``keep`` are never
        substituted away (projection must preserve them); an equality
        mentioning only kept variables is split into two inequalities.
        """
        ineqs: list[Constraint] = []
        eqs: list[LinExpr] = []
        for con in self._constraints:
            norm = _normalize(con)
            if norm is None:
                continue
            if norm.equality:
                eqs.append(norm.expr)
            else:
                ineqs.append(norm)
        substitutions: list[tuple[str, LinExpr]] = []
        fresh = 0
        while eqs:
            expr = eqs.pop()
            norm = _normalize(Constraint(expr, equality=True))
            if norm is None:
                continue
            expr = norm.expr
            if all(v in keep for v in expr.variables):
                # Only kept variables: the equality survives projection as
                # a pair of opposed inequalities.
                ineqs.append(Constraint(expr))
                ineqs.append(Constraint(expr.scaled(-1)))
                continue
            # Prefer an *eliminable* variable with a unit coefficient.
            unit = None
            for v, c in expr.terms:
                if abs(c) == 1 and v not in keep:
                    unit = (v, c)
                    break
            if unit is None and any(v in keep for v in expr.variables):
                # Mixed kept/eliminable equality with no unit eliminable
                # coefficient: exact elimination would need divisibility
                # constraints (e.g. ``4*sigma == x`` projects to ``4 | x``),
                # which an inequality system cannot express.  Relax to an
                # opposed inequality pair — sound for the real shadow; the
                # dark shadow then only gets more conservative.
                if trace is not None:
                    trace.record("equality-relaxed", expr=str(expr))
                ineqs.append(Constraint(expr))
                ineqs.append(Constraint(expr.scaled(-1)))
                continue
            if unit is None:
                # Omega mod-hat reduction: introduce a fresh variable whose
                # coefficient is provably +-1, substitute it away, and keep
                # the shrunken original equality.  (Only reached when the
                # equality has no kept variables, so the minimum is over
                # eliminable coefficients and Pugh's shrinkage argument
                # guarantees termination.)
                v, a = min(
                    (t for t in expr.terms if t[0] not in keep),
                    key=lambda t: abs(t[1]),
                )
                m = abs(a) + 1
                hat = LinExpr.of(
                    {u: _mod_hat(c, m) for u, c in expr.terms},
                    _mod_hat(expr.const, m),
                )
                sigma = f"__fm_sigma{fresh}"
                fresh += 1
                hat = hat.plus(LinExpr.var(sigma, -m))
                # hat has coefficient -sign(a) on v: solve v from it.
                cv = hat.coeff(v)
                assert abs(cv) == 1, "mod-hat reduction lost its unit coeff"
                replacement = hat.drop(v).scaled(-cv)
                if trace is not None:
                    trace.record(
                        "mod-hat", var=v, modulus=m, fresh=sigma
                    )
                substitutions.append((v, replacement))
                expr = expr.substitute(v, replacement)
                eqs.append(expr)
                eqs = [e.substitute(v, replacement) for e in eqs]
                ineqs = [
                    Constraint(c.expr.substitute(v, replacement))
                    for c in ineqs
                ]
                continue
            v, c = unit
            # c*v + rest = 0  =>  v = -rest/c = rest * (-c)  (|c| == 1).
            replacement = expr.drop(v).scaled(-c)
            if trace is not None:
                trace.record("substitute", var=v, expr=str(replacement))
            substitutions.append((v, replacement))
            eqs = [e.substitute(v, replacement) for e in eqs]
            ineqs = [
                Constraint(con.expr.substitute(v, replacement))
                for con in ineqs
            ]
        normalized: list[Constraint] = []
        for con in ineqs:
            norm = _normalize(con)
            if norm is not None:
                normalized.append(norm)
        return normalized, substitutions

    # -- Fourier-Motzkin core ----------------------------------------------

    @staticmethod
    def _split(
        constraints: Sequence[Constraint], var: str
    ) -> tuple[list[tuple[int, LinExpr]], list[tuple[int, LinExpr]], list[Constraint]]:
        """Partition into lower bounds ``a*var + r >= 0`` (a>0, returns
        (a, r)), upper bounds ``-b*var + s >= 0`` (b>0, returns (b, s)),
        and constraints not mentioning ``var``."""
        lowers: list[tuple[int, LinExpr]] = []
        uppers: list[tuple[int, LinExpr]] = []
        rest: list[Constraint] = []
        for con in constraints:
            a = con.expr.coeff(var)
            if a > 0:
                lowers.append((a, con.expr.drop(var)))
            elif a < 0:
                uppers.append((-a, con.expr.drop(var)))
            else:
                rest.append(con)
        return lowers, uppers, rest

    @staticmethod
    def _shadow(
        lowers: Sequence[tuple[int, LinExpr]],
        uppers: Sequence[tuple[int, LinExpr]],
        rest: Sequence[Constraint],
        dark: bool,
    ) -> list[Constraint]:
        """The real (``dark=False``) or dark shadow of one elimination."""
        out = list(rest)
        for a, r in lowers:
            for b, s in uppers:
                # a x >= -r  and  b x <= s  =>  a s + b r >= 0 (real);
                # integer-guaranteed when a s + b r >= (a-1)(b-1) (dark).
                expr = s.scaled(a).plus(r.scaled(b))
                if dark:
                    expr = expr.plus(LinExpr.constant(-(a - 1) * (b - 1)))
                out.append(Constraint(expr))
        if len(out) > _MAX_CONSTRAINTS:
            raise FMBudgetExceeded(
                f"shadow produced {len(out)} constraints"
            )
        return out

    @staticmethod
    def _pick_variable(
        constraints: Sequence[Constraint], candidates: Sequence[str]
    ) -> str:
        """Cheapest variable to eliminate: exact eliminations first, then
        the smallest lower*upper fan-out."""
        best: Optional[str] = None
        best_key: Optional[tuple[int, int]] = None
        for var in candidates:
            lowers, uppers, _ = System._split(constraints, var)
            exact = all(a == 1 for a, _ in lowers) or all(
                b == 1 for b, _ in uppers
            )
            key = (0 if exact else 1, len(lowers) * len(uppers))
            if best_key is None or key < best_key:
                best, best_key = var, key
        assert best is not None
        return best

    # -- exact emptiness ----------------------------------------------------

    def is_empty(self, trace: Optional[Trace] = None) -> bool:
        """Exact: ``True`` iff the system has **no** integer solution."""
        try:
            ineqs, _ = self._eliminated_equalities(trace)
        except _Infeasible:
            if trace is not None:
                trace.record("infeasible-equality")
            return True
        return _empty_ineqs(ineqs, trace, depth=0)

    # -- projection ---------------------------------------------------------

    def project(
        self,
        keep: Iterable[str],
        dark: bool = False,
        trace: Optional[Trace] = None,
    ) -> "System":
        """Eliminate every variable not in ``keep``.

        With ``dark=False`` the result is the *real shadow* projection: a
        sound over-approximation (every integer solution of ``self``
        projects into it; some of its points may not lift).  With
        ``dark=True`` every integer point of the result is guaranteed to
        lift to an integer solution of ``self`` (under-approximation).
        """
        keep_set = set(keep)
        try:
            constraints, _ = self._eliminated_equalities(
                trace, keep=frozenset(keep_set)
            )
        except _Infeasible:
            return System([Constraint(LinExpr.constant(-1))])
        while True:
            variables = [
                v
                for v in sorted(
                    {u for c in constraints for u in c.expr.variables}
                )
                if v not in keep_set
            ]
            if not variables:
                break
            var = self._pick_variable(constraints, variables)
            lowers, uppers, rest = self._split(constraints, var)
            if trace is not None:
                trace.record(
                    "eliminate",
                    var=var,
                    lowers=len(lowers),
                    uppers=len(uppers),
                    shadow="dark" if dark else "real",
                )
            shadow = self._shadow(lowers, uppers, rest, dark)
            constraints = []
            try:
                for con in shadow:
                    norm = _normalize(con)
                    if norm is not None:
                        constraints.append(norm)
            except _Infeasible:
                return System([Constraint(LinExpr.constant(-1))])
        return System(_dedup(constraints))

    # -- witnesses ----------------------------------------------------------

    def interval(self, var: str) -> tuple[Optional[int], Optional[int]]:
        """Rational-shadow bounds of ``var``: integer-tightened
        ``(lo, hi)`` with ``None`` for unbounded ends.  Sound (the true
        integer extent lies within), not necessarily tight."""
        projected = self.project([var])
        lo: Optional[int] = None
        hi: Optional[int] = None
        for con in projected.constraints:
            a = con.expr.coeff(var)
            c = con.expr.const
            if a == 0:
                if c < 0:
                    return (1, 0)  # empty interval
                continue
            if a > 0:
                bound = ceil(Fraction(-c, a))
                lo = bound if lo is None else max(lo, bound)
            else:
                bound = floor(Fraction(c, -a))
                hi = bound if hi is None else min(hi, bound)
        return lo, hi

    def sample_point(
        self,
        prefer_small: bool = True,
        budget: int = _SAMPLE_TRIES_PER_VAR,
    ) -> Optional[dict[str, int]]:
        """A concrete integer solution, or ``None`` (empty / budget).

        Variables are assigned one at a time, smallest feasible value
        first (``prefer_small`` gives minimal counterexample sizes), each
        candidate checked with the exact emptiness test before recursing.
        """
        if self.is_empty():
            return None
        assignment: dict[str, int] = {}
        system = self
        while True:
            variables = system.variables
            if not variables:
                break
            var = variables[0]
            lo, hi = system.interval(var)
            if lo is not None and hi is not None and lo > hi:
                return None  # projection says empty; shouldn't happen
            found = False
            for value in _candidates(lo, hi, budget, prefer_small):
                candidate = system._with_fixed(var, value)
                if not candidate.is_empty():
                    assignment[var] = value
                    system = candidate
                    found = True
                    break
            if not found:
                return None
        # Every variable that appears in a constraint was assigned by the
        # loop above (equalities included); the exact check is just belt
        # and braces.
        if not self.satisfies(assignment):
            return None
        return {
            v: c for v, c in assignment.items() if not v.startswith("__fm_")
        }

    def sample_rational(self) -> Optional[dict[str, Fraction]]:
        """Rational-vertex fallback witness: a rational solution obtained
        by back-substituting interval midpoints through the real-shadow
        elimination.  ``None`` when the rational relaxation is empty."""
        try:
            constraints, substitutions = self._eliminated_equalities()
        except _Infeasible:
            return None
        order: list[tuple[str, list[tuple[int, LinExpr]], list[tuple[int, LinExpr]]]] = []
        while True:
            variables = sorted(
                {u for c in constraints for u in c.expr.variables}
            )
            if not variables:
                break
            var = self._pick_variable(constraints, variables)
            lowers, uppers, rest = self._split(constraints, var)
            order.append((var, lowers, uppers))
            constraints = []
            try:
                for con in self._shadow(lowers, uppers, rest, dark=False):
                    norm = _normalize(con)
                    if norm is not None:
                        constraints.append(norm)
            except _Infeasible:
                return None
        for con in constraints:
            if con.expr.const < 0:
                return None
        env: dict[str, Fraction] = {}
        for var, lowers, uppers in reversed(order):
            lo: Optional[Fraction] = None
            hi: Optional[Fraction] = None
            for a, r in lowers:
                value = -r.evaluate_rational(env) / a
                lo = value if lo is None else max(lo, value)
            for b, s in uppers:
                value = s.evaluate_rational(env) / b
                hi = value if hi is None else min(hi, value)
            if lo is not None and hi is not None:
                env[var] = (lo + hi) / 2
            elif lo is not None:
                env[var] = lo
            elif hi is not None:
                env[var] = hi
            else:
                env[var] = Fraction(0)
        for var, expr in reversed(substitutions):
            for v in expr.variables:
                env.setdefault(v, Fraction(0))
            env[var] = expr.evaluate_rational(env)
        return {v: c for v, c in env.items() if not v.startswith("__fm_")}

    # -- internals ----------------------------------------------------------

    def _with_fixed(self, var: str, value: int) -> "System":
        return System(
            Constraint(
                con.expr.substitute(var, LinExpr.constant(value)),
                con.equality,
            )
            for con in self._constraints
        )


def _candidates(
    lo: Optional[int], hi: Optional[int], budget: int, prefer_small: bool
) -> Iterable[int]:
    """Candidate integer values for one variable, at most ``budget``.

    Bounded below: ascend from ``lo`` (minimal witnesses).  Bounded only
    above: descend from ``hi``.  Unbounded: spiral out from zero.  When
    ``prefer_small`` is off a bounded-below scan descends from ``hi``
    instead when it can."""
    if lo is not None and not prefer_small and hi is not None:
        lo, hi = None, hi  # fall through to the descend-from-hi branch
    if lo is not None:
        for step in range(budget):
            value = lo + step
            if hi is not None and value > hi:
                return
            yield value
    elif hi is not None:
        for step in range(budget):
            yield hi - step
    else:
        yield 0
        for step in range(1, budget // 2 + 1):
            yield step
            yield -step


def _dedup(constraints: Iterable[Constraint]) -> list[Constraint]:
    seen: dict[tuple, Constraint] = {}
    for con in constraints:
        key = (con.expr.terms, con.expr.const, con.equality)
        seen.setdefault(key, con)
    return list(seen.values())


def _empty_ineqs(
    constraints: list[Constraint], trace: Optional[Trace], depth: int
) -> bool:
    """Exact integer emptiness of an inequality-only system."""
    if depth > _MAX_SPLINTER_DEPTH:
        raise FMBudgetExceeded(f"splinter depth {depth} exceeded")
    normalized: list[Constraint] = []
    try:
        for con in constraints:
            norm = _normalize(con)
            if norm is not None:
                normalized.append(norm)
    except _Infeasible:
        if trace is not None:
            trace.record("contradiction", depth=depth)
        return True
    normalized = _dedup(normalized)
    variables = sorted({v for c in normalized for v in c.expr.variables})
    if not variables:
        return False  # all constant facts were satisfied above
    var = System._pick_variable(normalized, variables)
    lowers, uppers, rest = System._split(normalized, var)
    exact = all(a == 1 for a, _ in lowers) or all(b == 1 for b, _ in uppers)
    if trace is not None:
        trace.record(
            "eliminate",
            var=var,
            lowers=len(lowers),
            uppers=len(uppers),
            exact=exact,
            depth=depth,
        )
    if not lowers or not uppers:
        # Unbounded on one side: var can always be chosen once the rest
        # is satisfiable; elimination is exact.
        return _empty_ineqs(list(rest), trace, depth)
    dark = System._shadow(lowers, uppers, rest, dark=True)
    if not _empty_ineqs(dark, trace, depth):
        if trace is not None:
            trace.record("dark-shadow-nonempty", var=var, depth=depth)
        return False
    if exact:
        # Dark == real shadow: the dark-empty answer is the exact answer.
        return True
    real = System._shadow(lowers, uppers, rest, dark=False)
    if _empty_ineqs(real, trace, depth):
        if trace is not None:
            trace.record("real-shadow-empty", var=var, depth=depth)
        return True
    # Gap case: any integer solution hugs a lower bound.  Check the
    # finitely many splinter planes exactly (Pugh's omega test).
    m = max(b for b, _ in uppers)
    for a, r in lowers:
        top = (a * m - a - m) // m
        for i in range(top + 1):
            plane = Constraint(
                r.plus(LinExpr.var(var, a)).plus(LinExpr.constant(-i)),
                equality=True,
            )
            if trace is not None:
                trace.record("splinter", var=var, offset=i, depth=depth)
            splintered = System([*normalized, plane])
            try:
                ineqs, _ = splintered._eliminated_equalities(None)
            except _Infeasible:
                continue
            if not _empty_ineqs(ineqs, trace, depth + 1):
                return False
    return True
