"""Integer arithmetic helpers: gcd chains and unimodular completions.

The storage-mapping construction of Section 4 of the paper needs, for an
occupancy vector ``ov``:

- ``gcd`` of its components (to detect *non-prime* OVs, i.e. OVs passing
  through interior lattice points);
- in two dimensions, Bezout coefficients so that the mapping vector hits
  consecutive storage locations;
- in ``d`` dimensions (our extension of the paper's 2-D treatment), a
  *unimodular completion*: an integer matrix ``U`` with ``|det U| = 1`` whose
  first row dotted with ``ov`` gives ``gcd(ov)`` and whose remaining rows
  annihilate ``ov``.  Such a ``U`` linearises the quotient lattice
  ``Z^d / Z·ov`` and yields an integer storage mapping with the same
  properties the paper proves for the 2-D case.
"""

from __future__ import annotations

import math
from typing import Sequence


def extended_gcd(a: int, b: int) -> tuple[int, int, int]:
    """Return ``(g, x, y)`` with ``g = gcd(a, b)`` and ``a*x + b*y = g``.

    ``g`` is non-negative; the Bezout identity holds in every case,
    including ``extended_gcd(0, 0) == (0, 1, 0)``.
    """
    old_r, r = a, b
    old_x, x = 1, 0
    old_y, y = 0, 1
    while r != 0:
        q = old_r // r
        old_r, r = r, old_r - q * r
        old_x, x = x, old_x - q * x
        old_y, y = y, old_y - q * y
    if old_r < 0:
        old_r, old_x, old_y = -old_r, -old_x, -old_y
    return old_r, old_x, old_y


def vector_gcd(v: Sequence[int]) -> int:
    """Greatest common divisor of a vector's components (non-negative).

    ``vector_gcd(ov) == 1`` exactly when ``ov`` is *prime* in the paper's
    sense: it passes through no lattice point between its head and tail.
    The gcd of the all-zero vector is 0.
    """
    g = 0
    for c in v:
        g = math.gcd(g, c)
    return g


def is_prime_vector(v: Sequence[int]) -> bool:
    """True when the vector passes through no interior lattice points."""
    return vector_gcd(v) == 1


def unimodular_completion(v: Sequence[int]) -> list[list[int]]:
    """Return a unimodular matrix ``U`` with ``U @ v = (g, 0, ..., 0)``.

    ``g = vector_gcd(v)``.  ``U`` is a ``d x d`` integer matrix with
    determinant ±1.  Row 0 of ``U`` is a Bezout row (``U[0]·v == g``); rows
    1..d-1 span the sublattice of integer vectors orthogonal to the
    *progress* of ``v`` in the quotient sense: ``U[k]·v == 0`` for ``k >= 1``.

    The construction is a sequence of 2x2 extended-gcd eliminations (the
    column Hermite normal form of the single column ``v``), so all entries
    stay modest for realistic stencil vectors.

    Raises ``ValueError`` for the zero vector, for which no completion
    exists (every lattice point would be storage-equivalent).
    """
    d = len(v)
    if d == 0 or all(c == 0 for c in v):
        raise ValueError("unimodular completion of the zero vector is undefined")

    # Start with U = identity, w = copy of v; repeatedly fold component k
    # into component 0 with an extended-gcd rotation.
    u = [[1 if i == j else 0 for j in range(d)] for i in range(d)]
    w = list(v)
    for k in range(1, d):
        a, b = w[0], w[k]
        if b == 0:
            continue
        g, x, y = extended_gcd(a, b)
        # New row 0 = x*row0 + y*rowk ; new row k = (-b/g)*row0 + (a/g)*rowk.
        # The 2x2 block [[x, y], [-b//g, a//g]] has determinant
        # (x*a + y*b)/g = 1, so U stays unimodular.
        p, q = -(b // g), a // g
        row0 = [x * u[0][j] + y * u[k][j] for j in range(d)]
        rowk = [p * u[0][j] + q * u[k][j] for j in range(d)]
        u[0], u[k] = row0, rowk
        w[0], w[k] = g, 0
    if w[0] < 0:
        u[0] = [-c for c in u[0]]
        w[0] = -w[0]
    return u


def matrix_det_int(m: Sequence[Sequence[int]]) -> int:
    """Exact integer determinant via fraction-free Bareiss elimination."""
    n = len(m)
    if n == 0:
        return 1
    a = [list(map(int, row)) for row in m]
    if any(len(row) != n for row in a):
        raise ValueError("determinant requires a square matrix")
    sign = 1
    prev = 1
    for k in range(n - 1):
        if a[k][k] == 0:
            for i in range(k + 1, n):
                if a[i][k] != 0:
                    a[k], a[i] = a[i], a[k]
                    sign = -sign
                    break
            else:
                return 0
        for i in range(k + 1, n):
            for j in range(k + 1, n):
                a[i][j] = (a[i][j] * a[k][k] - a[i][k] * a[k][j]) // prev
        prev = a[k][k]
    return sign * a[n - 1][n - 1]


def matvec(m: Sequence[Sequence[int]], v: Sequence[int]) -> tuple[int, ...]:
    """Integer matrix-vector product ``m @ v`` as a tuple."""
    return tuple(sum(mi[j] * v[j] for j in range(len(v))) for mi in m)


def ceil_div(a: int, b: int) -> int:
    """Ceiling of ``a / b`` for integers, exact for negative values too."""
    if b == 0:
        raise ZeroDivisionError("ceil_div by zero")
    if b < 0:
        a, b = -a, -b
    return -((-a) // b)


def floor_div(a: int, b: int) -> int:
    """Floor of ``a / b`` for integers, exact for negative values too."""
    if b == 0:
        raise ZeroDivisionError("floor_div by zero")
    if b < 0:
        a, b = -a, -b
    return a // b


def matrix_inverse_unimodular(
    m: Sequence[Sequence[int]],
) -> list[list[int]]:
    """Exact inverse of a unimodular integer matrix (determinant ±1).

    Computed as the adjugate divided by the determinant; since the
    determinant is ±1 the inverse is integral.  Raises ``ValueError`` when
    the matrix is not unimodular.
    """
    n = len(m)
    det = matrix_det_int(m)
    if det not in (1, -1):
        raise ValueError(f"matrix is not unimodular (det={det})")
    if n == 1:
        return [[det]]
    adj = [[0] * n for _ in range(n)]
    for i in range(n):
        for j in range(n):
            minor = [
                [m[r][c] for c in range(n) if c != j]
                for r in range(n)
                if r != i
            ]
            cofactor = matrix_det_int(minor)
            if (i + j) % 2:
                cofactor = -cofactor
            adj[j][i] = cofactor  # note the transpose
    return [[a * det for a in row] for row in adj]


def matmul_int(
    a: Sequence[Sequence[int]], b: Sequence[Sequence[int]]
) -> list[list[int]]:
    """Integer matrix product ``a @ b``."""
    rows, inner, cols = len(a), len(b), len(b[0])
    if any(len(r) != inner for r in a):
        raise ValueError("matrix dimension mismatch")
    return [
        [sum(a[i][k] * b[k][j] for k in range(inner)) for j in range(cols)]
        for i in range(rows)
    ]
