"""Convex polytopes for iteration-space geometry.

The ISG (iteration space graph) of a loop nest is the set of integer points
of a convex polytope ``A q <= b`` (Section 4.3, footnote 6 of the paper).
For the storage computations we need only a few geometric queries on it:

- the *extreme points* (vertices), to evaluate ``mv . xp`` and count the
  integer points of a projection (Figure 6);
- the *projection extent* of the polytope along an arbitrary direction,
  for the known-bounds storage metric of Section 3.2.1;
- the *minimum projection* ``PM`` over all hyperplanes, which bounds the
  branch-and-bound search when the ISG size is known at compile time.

Everything here is exact over integers where the paper's formulas are
(projection counts), and floating point only for geometric widths that feed
search bounds.
"""

from __future__ import annotations

import itertools
import math
from typing import Iterable, Sequence

from repro.util.vectors import IntVector, as_vector, dot


class Polytope:
    """A convex polytope given by its vertices.

    Vertices are integer points (iteration-space corners).  The class does
    not require the caller to pre-compute the convex hull: redundant interior
    points are tolerated by every query (they can never attain a strict
    support maximum beyond the hull).
    """

    def __init__(self, vertices: Iterable[Sequence[int]]):
        verts = [as_vector(v) for v in vertices]
        if not verts:
            raise ValueError("a polytope needs at least one vertex")
        dims = {len(v) for v in verts}
        if len(dims) != 1:
            raise ValueError("all vertices must share one dimensionality")
        self._vertices: tuple[IntVector, ...] = tuple(dict.fromkeys(verts))
        self._dim = dims.pop()

    # -- construction -----------------------------------------------------

    @classmethod
    def from_box(cls, lower: Sequence[int], upper: Sequence[int]) -> "Polytope":
        """Axis-aligned box ``lower <= q <= upper`` (inclusive both ends).

        This is the ISG shape of an ordinary rectangular loop nest such as
        ``for i = lo1..hi1: for j = lo2..hi2``.
        """
        lower = as_vector(lower)
        upper = as_vector(upper)
        if len(lower) != len(upper):
            raise ValueError("bounds dimensionality mismatch")
        if any(lo > hi for lo, hi in zip(lower, upper)):
            raise ValueError(f"empty box: {lower} .. {upper}")
        corners = itertools.product(*[(lo, hi) for lo, hi in zip(lower, upper)])
        return cls(corners)

    @classmethod
    def from_loop_bounds(cls, bounds: Sequence[tuple[int, int]]) -> "Polytope":
        """Box from per-dimension ``(lo, hi)`` inclusive loop bounds."""
        lower = [lo for lo, _ in bounds]
        upper = [hi for _, hi in bounds]
        return cls.from_box(lower, upper)

    # -- basic queries -----------------------------------------------------

    @property
    def dim(self) -> int:
        """Dimensionality of the ambient iteration space."""
        return self._dim

    @property
    def vertices(self) -> tuple[IntVector, ...]:
        """The generating points (possibly including redundant ones)."""
        return self._vertices

    def extent(self, direction: Sequence[int]) -> tuple[int, int]:
        """``(min, max)`` of ``direction . q`` over the polytope's vertices.

        Because the polytope is convex and the functional linear, the
        extrema over all of it are attained at vertices, so this is exact.
        """
        values = [dot(direction, v) for v in self._vertices]
        return min(values), max(values)

    def projection_count(self, mapping_vector: Sequence[int]) -> int:
        """Number of integer points in the projection under ``mv . q``.

        This is the storage-allocation formula of Figure 6:
        ``|mv . xp1 - mv . xp2| + 1`` evaluated over the extreme points.
        It is exact when the mapping vector's components are coprime (the
        case the mapping construction of Section 4.1 guarantees).
        """
        lo, hi = self.extent(mapping_vector)
        return hi - lo + 1

    def width(self, direction: Sequence[float]) -> float:
        """Geometric projection length onto a (not necessarily unit) direction,
        normalised to per-unit-length of the direction."""
        length = math.sqrt(sum(float(c) * c for c in direction))
        if length == 0.0:
            raise ValueError("width along the zero direction is undefined")
        values = [
            sum(float(c) * x for c, x in zip(direction, v)) for v in self._vertices
        ]
        return (max(values) - min(values)) / length

    def min_width(self, extra_directions: Iterable[Sequence[int]] = ()) -> float:
        """Minimum projection ``PM`` of the polytope onto any hyperplane.

        In 2-D the minimising direction is always normal to one of the hull
        edges, so the computation is exact.  In higher dimensions we take the
        minimum over the coordinate axes plus any caller-supplied candidate
        directions — a safe (over-)estimate that still yields a valid search
        bound, since a larger ``PM`` would only shrink the search region that
        must be explored for optimality (we only use ``PM`` as documented in
        Section 3.2.1: bound = ``P_ov0 |ov0| / PM``, and an overestimate of
        the bound is handled by simply searching a bit more).
        """
        candidates: list[tuple[float, ...]] = []
        if self._dim == 2:
            hull = self._hull2d()
            n = len(hull)
            for i in range(n):
                x1, y1 = hull[i]
                x2, y2 = hull[(i + 1) % n]
                normal = (float(y1 - y2), float(x2 - x1))
                if normal != (0.0, 0.0):
                    candidates.append(normal)
        for axis in range(self._dim):
            candidates.append(tuple(1.0 if k == axis else 0.0 for k in range(self._dim)))
        for extra in extra_directions:
            candidates.append(tuple(float(c) for c in extra))
        return min(self.width(c) for c in candidates)

    def contains(self, point: Sequence[int]) -> bool:
        """Membership test.

        Exact in 2-D (half-plane checks around the hull).  In higher
        dimensions falls back to the bounding box, which is exact for the
        box-shaped ISGs produced by :meth:`from_box`.
        """
        point = as_vector(point)
        if len(point) != self._dim:
            raise ValueError("point dimensionality mismatch")
        if self._dim == 2:
            hull = self._hull2d()
            if len(hull) == 1:
                return point == hull[0]
            if len(hull) == 2:
                return _on_segment(hull[0], hull[1], point)
            n = len(hull)
            for i in range(n):
                a, b = hull[i], hull[(i + 1) % n]
                if _cross(a, b, point) < 0:
                    return False
            return True
        for k in range(self._dim):
            values = [v[k] for v in self._vertices]
            if not min(values) <= point[k] <= max(values):
                return False
        return True

    def bounding_box(self) -> tuple[IntVector, IntVector]:
        """Componentwise ``(lower, upper)`` corners of the bounding box."""
        lower = tuple(min(v[k] for v in self._vertices) for k in range(self._dim))
        upper = tuple(max(v[k] for v in self._vertices) for k in range(self._dim))
        return lower, upper

    def integer_point_count(self) -> int:
        """Number of lattice points; exact for boxes, bounding-box otherwise.

        Used only for storage accounting of the *natural* (fully expanded)
        versions, whose ISGs are rectangular.
        """
        lower, upper = self.bounding_box()
        count = 1
        for lo, hi in zip(lower, upper):
            count *= hi - lo + 1
        return count

    # -- internals ---------------------------------------------------------

    def _hull2d(self) -> list[IntVector]:
        """Counter-clockwise convex hull (Andrew's monotone chain)."""
        pts = sorted(set(self._vertices))
        if len(pts) <= 2:
            return pts
        lower: list[IntVector] = []
        for p in pts:
            while len(lower) >= 2 and _cross(lower[-2], lower[-1], p) <= 0:
                lower.pop()
            lower.append(p)
        upper: list[IntVector] = []
        for p in reversed(pts):
            while len(upper) >= 2 and _cross(upper[-2], upper[-1], p) <= 0:
                upper.pop()
            upper.append(p)
        hull = lower[:-1] + upper[:-1]
        return hull if hull else [pts[0]]

    def __repr__(self) -> str:
        return f"Polytope({list(self._vertices)!r})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Polytope):
            return NotImplemented
        return set(self._vertices) == set(other._vertices)

    def __hash__(self) -> int:
        return hash(frozenset(self._vertices))


def _cross(o: Sequence[int], a: Sequence[int], b: Sequence[int]) -> int:
    return (a[0] - o[0]) * (b[1] - o[1]) - (a[1] - o[1]) * (b[0] - o[0])


def _on_segment(a: Sequence[int], b: Sequence[int], p: Sequence[int]) -> bool:
    if _cross(a, b, p) != 0:
        return False
    return (
        min(a[0], b[0]) <= p[0] <= max(a[0], b[0])
        and min(a[1], b[1]) <= p[1] <= max(a[1], b[1])
    )
