"""A stable priority queue with lazy reprioritisation.

The branch-and-bound UOV search (Section 3.2.2 of the paper) repeatedly
re-inserts iteration points whose ``PATHSET`` grew.  ``heapq`` has no
decrease-key, so we use the standard lazy-deletion idiom: each push gets a
monotonically increasing sequence number (for stable FIFO tie-breaking) and
stale entries are skipped on pop.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Generic, Hashable, TypeVar

T = TypeVar("T", bound=Hashable)


class PriorityQueue(Generic[T]):
    """Min-priority queue over hashable items with updatable priorities.

    ``push`` with a better (smaller) priority for an item already queued
    supersedes the old entry; pushing with a worse priority is a no-op.
    """

    _REMOVED = object()

    def __init__(self) -> None:
        self._heap: list[list[Any]] = []
        self._entries: dict[T, list[Any]] = {}
        self._counter = itertools.count()

    def __len__(self) -> int:
        return len(self._entries)

    def __bool__(self) -> bool:
        return bool(self._entries)

    def __contains__(self, item: T) -> bool:
        return item in self._entries

    def push(self, item: T, priority: Any) -> bool:
        """Queue ``item`` at ``priority``; returns True if the queue changed."""
        entry = self._entries.get(item)
        if entry is not None:
            if entry[0] <= priority:
                return False
            entry[2] = self._REMOVED
        new_entry = [priority, next(self._counter), item]
        self._entries[item] = new_entry
        heapq.heappush(self._heap, new_entry)
        return True

    def pop(self) -> tuple[T, Any]:
        """Remove and return ``(item, priority)`` with the smallest priority.

        Equal priorities pop in insertion (FIFO) order: the sequence
        number breaks every tie, so pop order never depends on hash
        order or on how the underlying heap happens to settle.  The UOV
        search result is reproducible across runs and platforms because
        of this guarantee, so it is enforced, not just documented: the
        only ways to lose it are a priority mutated in place after
        insertion or a priority type with inconsistent comparison, both
        of which corrupt the heap invariant — which is asserted on every
        pop (the popped entry must still sort at or below the new top).
        """
        while self._heap:
            priority, seq, item = heapq.heappop(self._heap)
            if item is not self._REMOVED:
                assert not self._heap or (priority, seq) <= (
                    self._heap[0][0],
                    self._heap[0][1],
                ), (
                    "heap order corrupted (priority mutated after push?): "
                    f"popped {(priority, seq)} above "
                    f"{(self._heap[0][0], self._heap[0][1])}"
                )
                del self._entries[item]
                return item, priority
        raise IndexError("pop from an empty priority queue")

    def peek_priority(self) -> Any:
        """Smallest live priority without removing it."""
        while self._heap:
            if self._heap[0][2] is not self._REMOVED:
                return self._heap[0][0]
            heapq.heappop(self._heap)
        raise IndexError("peek on an empty priority queue")
