"""String-keyed plugin registries with did-you-mean lookup errors.

The pipeline dispatches codes, storage mappings, schedules, input rules
and combine hooks by name; every such family is a :class:`Registry`.  A
failed lookup raises :class:`UnknownNameError` — a ``KeyError`` subclass
whose message lists the registered names and suggests close matches —
replacing the bare ``KeyError``/if-elif fallthroughs that used to live in
``cli.py`` and ``experiments/``.
"""

from __future__ import annotations

import difflib
from dataclasses import dataclass, field
from typing import Any, Callable, Generic, Iterator, Optional, TypeVar

__all__ = ["Registry", "RegistryEntry", "UnknownNameError"]

T = TypeVar("T")


class UnknownNameError(KeyError):
    """Lookup of a name that is not registered.

    Subclasses ``KeyError`` so existing ``except KeyError`` call sites
    (and tests matching ``unknown code``) keep working; ``str(exc)``
    yields the full message because ``args[0]`` carries it.
    """

    def __init__(self, kind: str, name: str, known: list[str]):
        suggestions = difflib.get_close_matches(name, known, n=3, cutoff=0.5)
        message = f"unknown {kind} {name!r}; one of {sorted(known)}"
        if suggestions:
            quoted = ", ".join(repr(s) for s in suggestions)
            message += f" (did you mean {quoted}?)"
        super().__init__(message)
        self.kind = kind
        self.name = name
        self.known = sorted(known)
        self.suggestions = suggestions


@dataclass(frozen=True)
class RegistryEntry(Generic[T]):
    """One registered plugin: the value plus its self-description."""

    name: str
    value: T
    summary: str = ""
    meta: dict = field(default_factory=dict)


class Registry(Generic[T]):
    """An ordered, write-once mapping from names to plugin entries."""

    def __init__(self, kind: str):
        self.kind = kind
        self._entries: dict[str, RegistryEntry[T]] = {}

    def register(
        self,
        name: str,
        value: Optional[T] = None,
        summary: str = "",
        **meta: Any,
    ):
        """Register ``value`` under ``name``; usable as a decorator."""

        def _add(obj: T) -> T:
            if name in self._entries:
                raise ValueError(
                    f"{self.kind} {name!r} registered twice"
                )
            self._entries[name] = RegistryEntry(name, obj, summary, dict(meta))
            return obj

        if value is None:
            return _add
        return _add(value)

    def get(self, name: str) -> T:
        entry = self._entries.get(name)
        if entry is None:
            raise UnknownNameError(self.kind, name, list(self._entries))
        return entry.value

    def entry(self, name: str) -> RegistryEntry[T]:
        if name not in self._entries:
            raise UnknownNameError(self.kind, name, list(self._entries))
        return self._entries[name]

    def entries(self) -> tuple[RegistryEntry[T], ...]:
        return tuple(self._entries.values())

    def names(self) -> list[str]:
        return list(self._entries)

    def __contains__(self, name: object) -> bool:
        return name in self._entries

    def __iter__(self) -> Iterator[str]:
        return iter(self._entries)

    def __len__(self) -> int:
        return len(self._entries)

    def as_dict(self) -> dict[str, T]:
        """Name -> value view (for legacy ``MAKERS``-style callers)."""
        return {name: e.value for name, e in self._entries.items()}
