"""Operations on integer vectors represented as tuples.

Iteration points, dependence-distance vectors, occupancy vectors, and
mapping vectors are all plain ``tuple[int, ...]`` throughout the library:
they hash, compare, and print naturally, which the search and the test
suite rely on heavily.
"""

from __future__ import annotations

import math
from typing import Iterable, Sequence

IntVector = tuple[int, ...]


def as_vector(v: Iterable[int]) -> IntVector:
    """Coerce an iterable of integers into a canonical tuple vector.

    Raises ``TypeError`` for non-integral components (``bool`` is rejected
    too: a truth value is never a meaningful iteration coordinate).
    """
    out = []
    for c in v:
        if isinstance(c, bool):
            raise TypeError("a boolean is not a meaningful coordinate")
        if not isinstance(c, int):
            # numpy integer scalars are fine; duck-check via __index__
            # (floats do not define it).
            try:
                c = c.__index__()
            except AttributeError:
                raise TypeError(
                    f"vector component {c!r} is not an integer"
                ) from None
        out.append(int(c))
    return tuple(out)


def add(a: Sequence[int], b: Sequence[int]) -> IntVector:
    """Componentwise ``a + b``."""
    _check_dims(a, b)
    return tuple(x + y for x, y in zip(a, b))


def sub(a: Sequence[int], b: Sequence[int]) -> IntVector:
    """Componentwise ``a - b``."""
    _check_dims(a, b)
    return tuple(x - y for x, y in zip(a, b))


def neg(a: Sequence[int]) -> IntVector:
    """Componentwise negation."""
    return tuple(-x for x in a)


def scale(k: int, a: Sequence[int]) -> IntVector:
    """Scalar multiple ``k * a``."""
    return tuple(k * x for x in a)


def dot(a: Sequence[int], b: Sequence[int]) -> int:
    """Inner product; the storage mapping is ``mv . q + shift + modterm``."""
    _check_dims(a, b)
    return sum(x * y for x, y in zip(a, b))


def norm2(a: Sequence[int]) -> int:
    """Squared Euclidean length — exact, so usable as a search priority."""
    return sum(x * x for x in a)


def norm(a: Sequence[int]) -> float:
    """Euclidean length."""
    return math.sqrt(norm2(a))


def is_zero(a: Sequence[int]) -> bool:
    """True for the all-zero vector."""
    return all(x == 0 for x in a)


def is_lex_positive(a: Sequence[int]) -> bool:
    """Lexicographic positivity: first non-zero component is positive.

    Every dependence distance of a sequential loop nest is lexicographically
    positive (the producer iteration precedes the consumer); the ``Stencil``
    class enforces this invariant on construction.
    """
    for x in a:
        if x != 0:
            return x > 0
    return False


def lex_leq(a: Sequence[int], b: Sequence[int]) -> bool:
    """Lexicographic ``a <= b`` (tuple comparison, spelled out for intent)."""
    return tuple(a) <= tuple(b)


def manhattan(a: Sequence[int]) -> int:
    """L1 norm; used as a cheap tie-breaker in search priorities."""
    return sum(abs(x) for x in a)


def _check_dims(a: Sequence[int], b: Sequence[int]) -> None:
    if len(a) != len(b):
        raise ValueError(f"dimension mismatch: {len(a)} vs {len(b)}")
