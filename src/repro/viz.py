"""ASCII rendering of iteration-space structure (Figure 2 and friends).

Draws a rectangular ISG with the paper's annotations:

- ``q`` — the reference iteration point;
- ``#`` — points in ``DONE(V, q)`` (must execute before ``q``);
- ``D`` — points in ``DEAD(V, q)`` (their values are fully consumed once
  ``q`` has read its inputs; each is the tail of a legal UOV ``q - p``);
- ``.`` — other iteration points.

Also renders storage mappings as a grid of location numbers — the
fastest way to *see* that points an OV apart share a location and that
the interleaved/consecutive layouts really differ the way Section 4.2
says.

These renderers are exercised by tests and the ``done_dead_sets``
example; they are deliberately free of plotting dependencies so they run
anywhere the library runs.
"""

from __future__ import annotations

from typing import Sequence

from repro.core.cone import dead_set, done_set
from repro.core.stencil import Stencil
from repro.mapping.base import StorageMapping
from repro.util.polyhedron import Polytope

__all__ = ["render_done_dead", "render_mapping", "render_stencil"]


def render_stencil(stencil: Stencil) -> str:
    """The stencil as arrows in a small grid around the consumer ``*``.

    Rows are the first (outer) coordinate increasing downward; the
    consumer sits at the bottom since all dependences are
    lexicographically positive."""
    if stencil.dim != 2:
        raise ValueError("stencil rendering is two-dimensional")
    max0 = max(v[0] for v in stencil.vectors)
    min1 = min(min(v[1] for v in stencil.vectors), 0)
    max1 = max(max(v[1] for v in stencil.vectors), 0)
    rows = []
    producers = {(-v[0], -v[1]) for v in stencil.vectors}
    for r in range(-max0, 1):
        cells = []
        for c in range(min(-max1, min1, -0), max(-min1, max1) + 1):
            if (r, c) == (0, 0):
                cells.append("*")
            elif (r, c) in producers:
                cells.append("o")
            else:
                cells.append("·")
        rows.append(" ".join(cells))
    return "\n".join(rows)


def render_done_dead(
    stencil: Stencil,
    q: Sequence[int],
    bounds: Sequence[tuple[int, int]],
) -> str:
    """Figure 2: DONE (#) and DEAD (D) sets around a point q."""
    if stencil.dim != 2:
        raise ValueError("DONE/DEAD rendering is two-dimensional")
    region = Polytope.from_loop_bounds(bounds)
    q = tuple(q)
    done = done_set(stencil, q, region)
    dead = dead_set(stencil, q, region, done=done)
    (lo0, hi0), (lo1, hi1) = bounds
    lines = []
    for i in range(lo0, hi0 + 1):
        cells = []
        for j in range(lo1, hi1 + 1):
            p = (i, j)
            if p == q:
                cells.append("q")
            elif p in dead:
                cells.append("D")
            elif p in done:
                cells.append("#")
            else:
                cells.append(".")
        lines.append(" ".join(cells))
    legend = (
        "q = reference point   # = DONE (executes before q)   "
        "D = DEAD (q - D are the legal UOVs)   . = other"
    )
    return "\n".join(lines) + "\n" + legend


def render_mapping(
    mapping: StorageMapping,
    bounds: Sequence[tuple[int, int]],
    width: int = 4,
) -> str:
    """The mapping as a grid of storage locations over a 2-D box."""
    if mapping.dim != 2:
        raise ValueError("mapping rendering is two-dimensional")
    (lo0, hi0), (lo1, hi1) = bounds
    lines = []
    for i in range(lo0, hi0 + 1):
        cells = [str(mapping((i, j))).rjust(width) for j in range(lo1, hi1 + 1)]
        lines.append("".join(cells))
    return "\n".join(lines)
