"""Static UOV certification: certificates, counterexamples, replay."""

import pytest

from repro.analysis.certify import (
    UOVCertificate,
    UOVCounterexample,
    certify,
    ov_mapping_for,
)
from repro.analysis.legality import is_schedule_legal
from repro.core.stencil import Stencil

#: (code, stencil vectors, UOVs that must certify) — the paper's corpus.
CORPUS = [
    ("simple2d", [(1, 0), (0, 1), (1, 1)], [(2, 2), (1, 1)]),
    ("stencil5", [(1, -2), (1, -1), (1, 0), (1, 1), (1, 2)], [(2, 0)]),
    ("jacobi", [(1, -1), (1, 0), (1, 1)], [(2, 0)]),
    ("psm", [(0, 1), (1, 0), (1, 1)], [(2, 2), (1, 1)]),
]


class TestCertificates:
    @pytest.mark.parametrize(
        "name,vectors,uovs", CORPUS, ids=[c[0] for c in CORPUS]
    )
    def test_corpus_uovs_certify(self, name, vectors, uovs):
        stencil = Stencil(vectors)
        for ov in uovs:
            result = certify(ov, stencil)
            assert isinstance(result, UOVCertificate), f"{name} {ov}"
            assert result.verify()

    def test_initial_uov_always_certifies(self, fig1_stencil):
        result = certify(fig1_stencil.initial_uov, fig1_stencil)
        assert isinstance(result, UOVCertificate)

    def test_certificate_rows_are_integer_checkable(self, stencil5):
        cert = certify((2, 0), stencil5)
        # One witness row per stencil vector, each a non-negative
        # combination summing (with the mandatory vi) to the OV.
        assert set(cert.rows) == set(stencil5.vectors)
        for vi, row in cert.rows.items():
            total = list(vi)
            for vj, a in row.items():
                assert a >= 0
                for k in range(2):
                    total[k] += a * vj[k]
            assert tuple(total) == (2, 0)

    def test_tampered_certificate_fails_verify(self, fig1_stencil):
        cert = certify((1, 1), fig1_stencil)
        rows = {vi: dict(row) for vi, row in cert.rows.items()}
        some_vi = next(iter(rows))
        rows[some_vi][fig1_stencil.vectors[0]] = (
            rows[some_vi].get(fig1_stencil.vectors[0], 0) + 1
        )
        assert not UOVCertificate(cert.ov, cert.stencil, rows).verify()

    def test_json_artifact_shape(self, fig1_stencil):
        record = certify((1, 1), fig1_stencil).to_json()
        assert record["verdict"] == "universal"
        assert record["ov"] == [1, 1]
        assert len(record["rows"]) == len(fig1_stencil.vectors)


class TestCounterexamples:
    @pytest.mark.parametrize(
        "name,vectors,uovs", CORPUS, ids=[c[0] for c in CORPUS]
    )
    def test_known_illegal_ov_rejected_with_replay(self, name, vectors, uovs):
        """(1, 0) skips the same-row dependences of every corpus stencil;
        the refutation must come with a schedule that really clobbers."""
        stencil = Stencil(vectors)
        result = certify((1, 0), stencil)
        assert isinstance(result, UOVCounterexample), name
        assert result.replayable
        violation = result.replay()
        assert violation is not None
        # The schedule fragment is itself legal — the clobber is the
        # mapping's fault, not an artifact of an impossible order.
        assert is_schedule_legal(result.order, stencil, bounds=result.bounds)

    def test_counterexample_names_the_cast(self, fig1_stencil):
        result = certify((1, 0), fig1_stencil)
        assert result.failing_vector in fig1_stencil.vectors
        assert result.writer is not None and result.victim is not None
        for k in range(2):
            assert result.victim[k] == result.writer[k] - result.ov[k]
        # Writer and victim genuinely collide in the replay mapping.
        mapping = result.mapping()
        assert mapping(result.writer) == mapping(result.victim)

    def test_skipping_schedule_construction(self, fig1_stencil):
        result = certify((1, 0), fig1_stencil, counterexample_schedule=False)
        assert isinstance(result, UOVCounterexample)
        assert not result.replayable and result.replay() is None

    def test_json_artifact_shape(self, fig1_stencil):
        record = certify((1, 0), fig1_stencil).to_json()
        assert record["verdict"] == "rejected"
        assert record["failing_vector"] in [[1, 0], [0, 1], [1, 1]]
        assert record["order"], "replayable counterexample stores its order"


class TestValidation:
    def test_zero_ov_rejected(self, fig1_stencil):
        with pytest.raises(ValueError, match="zero vector"):
            certify((0, 0), fig1_stencil)

    def test_dimension_mismatch_rejected(self, fig1_stencil):
        with pytest.raises(ValueError, match="dimensionality"):
            certify((1, 1, 1), fig1_stencil)

    def test_ov_mapping_for_dispatches_on_dim(self):
        from repro.mapping.ov2d import OVMapping2D
        from repro.mapping.ovnd import OVMappingND
        from repro.util.polyhedron import Polytope

        box2 = Polytope.from_box((0, 0), (3, 3))
        box3 = Polytope.from_box((0, 0, 0), (2, 2, 2))
        assert isinstance(ov_mapping_for((1, 1), box2), OVMapping2D)
        assert isinstance(ov_mapping_for((1, 1, 1), box3), OVMappingND)


class TestPropertyBased:
    """Satellite (f): certify(sum vi) holds for random 2-D stencils."""

    def test_initial_uov_certifies_for_random_stencils(self):
        hypothesis = pytest.importorskip("hypothesis")
        st = pytest.importorskip("hypothesis.strategies")

        from ..core.test_stencil import lex_positive_vectors

        @hypothesis.settings(max_examples=40, deadline=None)
        @hypothesis.given(
            st.lists(
                lex_positive_vectors(max_abs=3), min_size=1, max_size=4
            )
        )
        def check(vectors):
            stencil = Stencil(vectors)
            result = certify(stencil.initial_uov, stencil)
            assert isinstance(result, UOVCertificate)
            assert result.verify()

        check()
