"""Value-based dependence analysis: stencil extraction."""

import pytest

from repro.analysis.dependence import (
    UniformityError,
    extract_stencil,
    flow_distances,
)
from repro.codes import make_jacobi, make_psm, make_simple2d, make_stencil5
from repro.ir import ArrayDecl, ArrayRef, Assignment, LoopNest, Program


class TestExtraction:
    @pytest.mark.parametrize(
        "maker", [make_simple2d, make_stencil5, make_psm, make_jacobi]
    )
    def test_extracted_stencil_matches_declared(self, maker):
        code = next(iter(maker().values())).code
        assert extract_stencil(code.program) == code.stencil

    def test_fig1_distances(self):
        code = next(iter(make_simple2d().values())).code
        stmt = code.program.single_statement
        distances = flow_distances(stmt, ("i", "j"))
        assert set(distances) == {(1, 0), (0, 1), (1, 1)}

    def test_input_only_reads_dropped(self):
        # A statement reading only *forward* offsets of its own array
        # consumes loop inputs, not loop-carried values.
        stmt = Assignment(
            target=ArrayRef.of("A", "i", "j"),
            sources=(ArrayRef.of("A", "i+1", "j"),),
            combine=lambda a: a,
        )
        assert flow_distances(stmt, ("i", "j")) == []

    def test_no_carried_dependence_is_error(self):
        stmt = Assignment(
            target=ArrayRef.of("A", "i"),
            sources=(ArrayRef.of("B", "i"),),
            combine=lambda b: b,
        )
        program = Program(
            name="copy",
            loop=LoopNest.of(("i",), [(0, 9)]),
            body=(stmt,),
            arrays=(ArrayDecl.of("A", 10), ArrayDecl.of("B", 10)),
        )
        with pytest.raises(ValueError):
            extract_stencil(program)

    def test_self_read_same_iteration_rejected(self):
        stmt = Assignment(
            target=ArrayRef.of("A", "i"),
            sources=(ArrayRef.of("A", "i"),),
            combine=lambda a: a,
        )
        with pytest.raises(ValueError):
            flow_distances(stmt, ("i",))

    def test_non_uniform_write_rejected(self):
        stmt = Assignment(
            target=ArrayRef.of("A", "n-i"),
            sources=(ArrayRef.of("A", "i-1"),),
            combine=lambda a: a,
        )
        with pytest.raises(UniformityError):
            flow_distances(stmt, ("i",))

    def test_non_uniform_read_rejected(self):
        stmt = Assignment(
            target=ArrayRef.of("A", "i"),
            sources=(ArrayRef.of("A", "2*i"),),
            combine=lambda a: a,
        )
        with pytest.raises(UniformityError):
            flow_distances(stmt, ("i",))
