"""The diagnostics engine: severities, findings, renderers, exit codes."""

import json

import pytest

from repro.analysis.diag import (
    DIAG_SCHEMA_VERSION,
    Diagnostics,
    Finding,
    Severity,
)
from repro.obs.metrics import Metrics


class TestSeverity:
    def test_ordering(self):
        assert Severity.INFO < Severity.WARNING < Severity.ERROR

    @pytest.mark.parametrize("text", ["error", "ERROR", "Error"])
    def test_parse_is_case_insensitive(self, text):
        assert Severity.parse(text) is Severity.ERROR

    def test_parse_rejects_unknown(self):
        with pytest.raises(ValueError, match="unknown severity"):
            Severity.parse("fatal")

    def test_str_is_lowercase(self):
        assert str(Severity.WARNING) == "warning"


class TestFinding:
    def test_render_includes_hint(self):
        f = Finding(
            "UOV001", Severity.ERROR, "psm/ov", "not universal",
            fix_hint="use the initial UOV",
        )
        text = f.render()
        assert "UOV001" in text and "psm/ov" in text and "hint:" in text

    def test_json_omits_empty_fields(self):
        record = Finding("X001", Severity.INFO, "s", "m").to_json()
        assert "fix_hint" not in record and "data" not in record

    def test_json_keeps_data(self):
        record = Finding(
            "X001", Severity.INFO, "s", "m", data={"races": 3}
        ).to_json()
        assert record["data"] == {"races": 3}


class TestDiagnostics:
    def make(self):
        diag = Diagnostics(metrics=Metrics())
        diag.emit("A001", Severity.INFO, "s1", "fyi")
        diag.emit("B001", Severity.WARNING, "s2", "hmm")
        return diag

    def test_exit_code_contract(self):
        diag = self.make()
        # Worst finding is a warning: clean at --fail-on error,
        # failing at --fail-on warning.
        assert diag.exit_code(Severity.ERROR) == 0
        assert diag.exit_code(Severity.WARNING) == 1
        diag.emit("C001", Severity.ERROR, "s3", "bad")
        assert diag.exit_code(Severity.ERROR) == 1

    def test_empty_is_clean_at_every_threshold(self):
        diag = Diagnostics(metrics=Metrics())
        assert diag.exit_code(Severity.WARNING) == 0
        assert diag.max_severity() is None
        assert diag.summary() == "clean: no findings"

    def test_metrics_mirroring(self):
        metrics = Metrics()
        diag = Diagnostics(metrics=metrics)
        diag.emit("A001", Severity.INFO, "s", "m")
        diag.emit("A001", Severity.INFO, "s", "m")
        snapshot = metrics.snapshot()["counters"]
        assert snapshot["lint.findings"] == 2
        assert snapshot["lint.findings.A001"] == 2
        assert snapshot["lint.severity.info"] == 2

    def test_json_schema(self):
        record = json.loads(self.make().render_json())
        assert record["schema"] == DIAG_SCHEMA_VERSION
        assert record["summary"] == {
            "total": 2, "errors": 0, "warnings": 1, "infos": 1,
        }
        assert [f["code"] for f in record["findings"]] == ["A001", "B001"]

    def test_text_render_ends_with_summary(self):
        text = self.make().render_text()
        assert text.splitlines()[-1] == "1 warning, 1 info (2 findings)"


class TestFindingRegistry:
    def test_registry_covers_every_emitted_code(self):
        """Any "CODE" string literal emitted anywhere under src/ must have
        a registry entry — docs/LINT_CODES.md is generated from it."""
        import pathlib
        import re

        from repro.analysis.diag import FINDING_REGISTRY, finding_spec

        root = pathlib.Path(__file__).resolve().parents[2] / "src"
        pattern = re.compile(r'"((?:APP|SCH|UOV|SYM|RACE|STO|FUZ|RES|SPEC)\d{3})"')
        emitted = set()
        for path in root.rglob("*.py"):
            emitted.update(pattern.findall(path.read_text()))
        registered = {spec.code for spec in FINDING_REGISTRY}
        assert emitted <= registered, emitted - registered
        for code in sorted(registered):
            assert finding_spec(code).code == code

    def test_registry_codes_unique_and_sorted_by_family(self):
        from repro.analysis.diag import FINDING_REGISTRY

        codes = [spec.code for spec in FINDING_REGISTRY]
        assert len(codes) == len(set(codes))

    def test_unknown_code_is_none(self):
        from repro.analysis.diag import finding_spec

        assert finding_spec("NOPE999") is None

    def test_lint_codes_doc_is_current(self):
        """docs/LINT_CODES.md must match `repro lint-codes` output — CI
        asserts this with `repro lint-codes --check`."""
        import pathlib

        from repro.analysis.diag import render_lint_codes_md

        doc = pathlib.Path(__file__).resolve().parents[2] / "docs" / "LINT_CODES.md"
        assert doc.read_text() == render_lint_codes_md()
