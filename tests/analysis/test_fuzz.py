"""Differential fuzzing: the static subsystem vs. sampled schedules.

The acceptance bar for the verifier is quantitative: at least 200 random
legal schedules sampled across the corpus with **zero** static/dynamic
disagreements.  :class:`TestAcceptance` is that bar.
"""

import pytest

from repro.analysis.fuzz import (
    differential_fuzz_mapping,
    differential_fuzz_uov,
)
from repro.core.stencil import Stencil
from repro.mapping.optimized import RollingBufferMapping
from repro.mapping.ov2d import OVMapping2D
from repro.util.polyhedron import Polytope

#: (stencil vectors, certified UOV, bounds) — one entry per corpus code.
SUBJECTS = [
    ([(1, 0), (0, 1), (1, 1)], (1, 1), ((0, 5), (0, 6))),
    ([(1, -2), (1, -1), (1, 0), (1, 1), (1, 2)], (2, 0), ((1, 4), (0, 8))),
    ([(1, -1), (1, 0), (1, 1)], (2, 0), ((1, 4), (0, 8))),
    ([(0, 1), (1, 0), (1, 1)], (2, 2), ((0, 4), (0, 5))),
]


class TestAcceptance:
    def test_200_schedules_zero_disagreements(self):
        total = 0
        for vectors, ov, bounds in SUBJECTS:
            report = differential_fuzz_uov(
                ov, Stencil(vectors), bounds, samples=55, seed=0
            )
            assert report.ok, report.disagreements
            assert report.verdict == "universal"
            assert report.dynamic_violations == 0
            total += report.samples
        assert total >= 200


class TestRejectedSide:
    def test_counterexample_must_replay(self, fig1_stencil):
        report = differential_fuzz_uov(
            (1, 0), fig1_stencil, ((0, 5), (0, 6)), samples=20
        )
        assert report.verdict == "rejected"
        assert report.counterexample_replayed is True
        assert report.ok
        # Random schedules trip over the bad OV too — evidence the
        # static refutation describes real behaviour, not an edge case.
        assert report.dynamic_violations > 0


class TestMappingSide:
    def test_clean_mapping_survives_sampling(self, fig1_stencil):
        box = Polytope.from_loop_bounds(((0, 5), (0, 6)))
        report = differential_fuzz_mapping(
            OVMapping2D((1, 1), box), fig1_stencil, ((0, 5), (0, 6)),
            samples=25,
        )
        assert report.verdict == "clean" and report.ok
        assert report.dynamic_violations == 0

    def test_racy_mapping_may_violate_without_disagreeing(self, fig1_stencil):
        box = Polytope.from_loop_bounds(((0, 5), (0, 6)))
        report = differential_fuzz_mapping(
            RollingBufferMapping(fig1_stencil, box),
            fig1_stencil,
            ((0, 5), (0, 6)),
            samples=25,
        )
        assert report.verdict == "racy"
        # Sampled violations are expected here and are not disagreements.
        assert report.ok

    def test_reports_are_reproducible(self, fig1_stencil):
        box = Polytope.from_loop_bounds(((0, 4), (0, 4)))
        kwargs = dict(samples=10, seed=7)
        a = differential_fuzz_mapping(
            OVMapping2D((1, 1), box), fig1_stencil, ((0, 4), (0, 4)), **kwargs
        )
        b = differential_fuzz_mapping(
            OVMapping2D((1, 1), box), fig1_stencil, ((0, 4), (0, 4)), **kwargs
        )
        assert (a.verdict, a.disagreements, a.dynamic_violations) == (
            b.verdict, b.disagreements, b.dynamic_violations
        )


class TestSymbolicSide:
    def test_symbolic_fuzz_agrees_with_enumerative(self):
        from repro.analysis.fuzz import differential_fuzz_symbolic

        report = differential_fuzz_symbolic(trials=15, seed=7)
        assert report.ok, report.disagreements
        assert report.verdict == "universal"
        assert 0 < report.samples <= 15

    def test_symbolic_fuzz_3d(self):
        from repro.analysis.fuzz import differential_fuzz_symbolic

        report = differential_fuzz_symbolic(trials=6, seed=3, dim=3)
        assert report.ok, report.disagreements

    def test_random_stencil_vectors_are_lex_positive(self):
        import random

        from repro.analysis.fuzz import random_stencil

        rng = random.Random(11)
        for _ in range(50):
            stencil = random_stencil(rng, dim=2)
            assert stencil.vectors
            for v in stencil.vectors:
                assert v > (0, 0) or (v[0] == 0 and v[1] > 0) or v[0] > 0
