"""Schedule legality and UOV applicability."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.legality import check_uov_applicability, is_schedule_legal
from repro.codes import make_psm, make_simple2d, make_stencil5
from repro.core.stencil import Stencil
from repro.ir import ArrayDecl, ArrayRef, Assignment, LoopNest, Program
from repro.schedule import (
    InterchangedSchedule,
    LexicographicSchedule,
    TiledSchedule,
    WavefrontSchedule,
    required_skew,
)

from ..core.test_stencil import lex_positive_vectors


class TestScheduleLegality:
    def test_lex_always_legal(self, fig1_stencil):
        order = list(LexicographicSchedule().order([(0, 4), (0, 4)]))
        assert is_schedule_legal(order, fig1_stencil)

    def test_reversed_order_illegal(self, fig1_stencil):
        order = list(LexicographicSchedule().order([(0, 4), (0, 4)]))
        assert not is_schedule_legal(reversed(order), fig1_stencil)

    def test_duplicate_point_rejected(self, fig1_stencil):
        with pytest.raises(ValueError):
            is_schedule_legal([(0, 0), (0, 0)], fig1_stencil)

    @settings(max_examples=25, deadline=None)
    @given(
        st.lists(lex_positive_vectors(max_abs=2), min_size=1, max_size=3),
        st.sampled_from(["lex", "interchange", "wavefront", "tiled"]),
    )
    def test_algebraic_matches_dynamic(self, vectors, schedule_kind):
        """Each schedule's own legality criterion agrees with brute force."""
        s = Stencil(vectors)
        bounds = [(0, 4), (0, 5)]
        schedule = {
            "lex": LexicographicSchedule(),
            "interchange": InterchangedSchedule((1, 0)),
            "wavefront": WavefrontSchedule((2, 1)),
            "tiled": TiledSchedule((2, 3)),
        }[schedule_kind]
        algebraic = schedule.is_legal_for(s, bounds)
        dynamic = is_schedule_legal(schedule.order(bounds), s)
        if schedule_kind == "tiled":
            # Full permutability is sufficient, not necessary, so the
            # tiled criterion is allowed to be conservative — but it must
            # stay sound.
            if algebraic:
                assert dynamic
        else:
            # For lex / interchange / wavefront the criteria are exact,
            # and with |components| <= 2 every violating dependence pair
            # fits inside the 5x6 box, so algebraic == dynamic.
            assert algebraic == dynamic

    def test_skewed_tiling_legal_for_stencil5(self, stencil5):
        skew = required_skew(stencil5)
        sched = TiledSchedule((2, 4), skew=skew)
        bounds = [(1, 6), (0, 11)]
        assert sched.is_legal_for(stencil5, bounds)
        assert is_schedule_legal(sched.order(bounds), stencil5)

    def test_unskewed_tiling_illegal_for_stencil5(self, stencil5):
        sched = TiledSchedule((2, 4))
        bounds = [(1, 6), (0, 11)]
        assert not sched.is_legal_for(stencil5, bounds)
        assert not is_schedule_legal(sched.order(bounds), stencil5)


class TestBoundsEnumeration:
    """With bounds, an incomplete or out-of-box order is an error, not a
    vacuous pass."""

    BOUNDS = [(0, 2), (0, 3)]

    def full_order(self):
        return list(LexicographicSchedule().order(self.BOUNDS))

    def test_complete_enumeration_accepted(self, fig1_stencil):
        assert is_schedule_legal(
            self.full_order(), fig1_stencil, bounds=self.BOUNDS
        )

    def test_strict_subset_raises(self, fig1_stencil):
        order = self.full_order()[:-1]
        with pytest.raises(ValueError, match=r"11 of 12 .*missing"):
            is_schedule_legal(order, fig1_stencil, bounds=self.BOUNDS)

    def test_missing_interior_point_raises(self, fig1_stencil):
        order = [p for p in self.full_order() if p != (1, 2)]
        with pytest.raises(ValueError, match=r"missing e.g. \[\(1, 2\)\]"):
            is_schedule_legal(order, fig1_stencil, bounds=self.BOUNDS)

    def test_out_of_box_point_raises(self, fig1_stencil):
        order = self.full_order() + [(9, 9)]
        with pytest.raises(ValueError, match="outside the ISG bounds"):
            is_schedule_legal(order, fig1_stencil, bounds=self.BOUNDS)

    def test_without_bounds_subsets_still_pass(self, fig1_stencil):
        # The old contract is preserved: no bounds, no completeness check.
        assert is_schedule_legal(
            self.full_order()[:-1], fig1_stencil
        )

    def test_schedule_is_legal_for_checks_completeness(self, fig1_stencil):
        from repro.schedule.base import Schedule

        class DroppingSchedule(Schedule):
            # No algebraic shortcut: the generic dynamic check runs, and
            # it must notice the silently dropped point.
            def order(self, bounds):
                return list(LexicographicSchedule().order(bounds))[:-1]

        with pytest.raises(ValueError, match="missing"):
            DroppingSchedule().is_legal_for(fig1_stencil, self.BOUNDS)


class TestApplicability:
    @pytest.mark.parametrize(
        "maker,sizes",
        [
            (make_simple2d, {"n": 4, "m": 5}),
            (make_stencil5, {"T": 3, "L": 8}),
            (make_psm, {"n0": 4, "n1": 5}),
        ],
    )
    def test_benchmark_codes_are_applicable(self, maker, sizes):
        code = next(iter(maker().values())).code
        report = check_uov_applicability(code.program, sizes)
        assert report
        assert report.stencil == code.stencil
        assert "applicable" in str(report)

    def test_live_out_array_not_applicable(self):
        stmt = Assignment(
            target=ArrayRef.of("A", "i", "j"),
            sources=(ArrayRef.of("A", "i-1", "j"),),
            combine=lambda a: a,
        )
        program = Program(
            name="liveout",
            loop=LoopNest.of(("i", "j"), [(1, 4), (1, 4)]),
            body=(stmt,),
            arrays=(ArrayDecl.of("A", 5, 5, live_out=True),),
        )
        report = check_uov_applicability(program)
        assert not report
        assert "live-out" in str(report)

    def test_non_uniform_not_applicable(self):
        stmt = Assignment(
            target=ArrayRef.of("A", "i", "j"),
            sources=(ArrayRef.of("A", "j", "i"),),
            combine=lambda a: a,
        )
        program = Program(
            name="transpose",
            loop=LoopNest.of(("i", "j"), [(1, 4), (1, 4)]),
            body=(stmt,),
            arrays=(ArrayDecl.of("A", 5, 5),),
        )
        report = check_uov_applicability(program)
        assert not report
        assert "not uniform" in str(report)

    def test_no_temporaries_not_applicable(self):
        stmt = Assignment(
            target=ArrayRef.of("A", "i"),
            sources=(ArrayRef.of("B", "i"),),
            combine=lambda b: b,
        )
        program = Program(
            name="copy",
            loop=LoopNest.of(("i",), [(0, 9)]),
            body=(stmt,),
            arrays=(ArrayDecl.of("A", 10), ArrayDecl.of("B", 10)),
        )
        report = check_uov_applicability(program)
        assert not report
