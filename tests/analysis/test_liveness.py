"""Dynamic mapping legality — the semantic referee."""

import random

import pytest

from repro.analysis.liveness import find_mapping_violation, is_mapping_legal
from repro.mapping import OVMapping2D, RollingBufferMapping
from repro.schedule import (
    LexicographicSchedule,
    TiledSchedule,
    WavefrontSchedule,
    random_legal_order,
)
from repro.util.polyhedron import Polytope


class TestUovMappingsUniversal:
    def test_legal_under_every_schedule_family(self, fig1_stencil):
        bounds = [(0, 6), (0, 7)]
        isg = Polytope.from_box((0, 0), (6, 7))
        mapping = OVMapping2D((1, 1), isg)
        for schedule in (
            LexicographicSchedule(),
            WavefrontSchedule((1, 1)),
            WavefrontSchedule((1, 1), reverse_ties=True),
            TiledSchedule((2, 3)),
            TiledSchedule((4, 2)),
        ):
            assert is_mapping_legal(
                mapping, fig1_stencil, schedule.order(bounds)
            ), schedule.name

    def test_legal_under_random_schedules(self, fig1_stencil):
        rng = random.Random(11)
        bounds = [(0, 5), (0, 5)]
        isg = Polytope.from_box((0, 0), (5, 5))
        mapping = OVMapping2D((1, 1), isg)
        for _ in range(15):
            order = random_legal_order(fig1_stencil, bounds, rng)
            assert is_mapping_legal(mapping, fig1_stencil, order)

    def test_stencil5_uov_under_skewed_tiling(self, stencil5):
        from repro.schedule import required_skew

        bounds = [(1, 8), (0, 11)]
        isg = Polytope.from_box((1, 0), (8, 11))
        for layout in ("interleaved", "consecutive"):
            mapping = OVMapping2D((2, 0), isg, layout=layout)
            sched = TiledSchedule((3, 4), skew=required_skew(stencil5))
            assert is_mapping_legal(
                mapping, stencil5, sched.order(bounds)
            )


class TestNonUniversalMappings:
    def test_non_uov_caught_with_evidence(self, fig1_stencil):
        bounds = [(0, 5), (0, 5)]
        isg = Polytope.from_box((0, 0), (5, 5))
        mapping = OVMapping2D((1, 0), isg)  # not a UOV
        order = list(LexicographicSchedule().order(bounds))
        violation = find_mapping_violation(mapping, fig1_stencil, order)
        assert violation is not None
        # the evidence names a pending consumer of the clobbered value
        assert violation.pending_reader is not None
        assert "overwrites" in str(violation)
        assert mapping(violation.writer) == violation.location

    def test_rolling_buffer_fails_under_tiling(self, fig1_stencil):
        bounds = [(0, 7), (0, 7)]
        isg = Polytope.from_box((0, 0), (7, 7))
        rb = RollingBufferMapping(fig1_stencil, isg)
        tiled = list(TiledSchedule((3, 3)).order(bounds))
        assert not is_mapping_legal(rb, fig1_stencil, tiled)

    def test_rolling_buffer_fails_under_wavefront(self, fig1_stencil):
        bounds = [(0, 7), (0, 7)]
        isg = Polytope.from_box((0, 0), (7, 7))
        rb = RollingBufferMapping(fig1_stencil, isg)
        wf = list(WavefrontSchedule((1, 1)).order(bounds))
        assert not is_mapping_legal(rb, fig1_stencil, wf)

    def test_duplicate_points_rejected(self, fig1_stencil):
        isg = Polytope.from_box((0, 0), (2, 2))
        mapping = OVMapping2D((1, 1), isg)
        with pytest.raises(ValueError):
            is_mapping_legal(
                mapping, fig1_stencil, [(0, 0), (0, 0), (1, 1)]
            )


class TestSelfConsumptionSemantics:
    def test_overwriting_own_input_is_legal(self, fig1_stencil):
        """ov = (1,1) is in the stencil itself: each iteration reads the
        value it then displaces.  Reads precede the write, so this is
        legal — the heart of the DEAD-set definition."""
        bounds = [(0, 4), (0, 4)]
        isg = Polytope.from_box((0, 0), (4, 4))
        mapping = OVMapping2D((1, 1), isg)
        order = list(LexicographicSchedule().order(bounds))
        assert is_mapping_legal(mapping, fig1_stencil, order)
