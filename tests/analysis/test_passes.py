"""The lint pass registry and the corpus-wide driver."""

import pytest

from repro.analysis.diag import Diagnostics, Severity
from repro.analysis.passes import (
    LINT_SIZES,
    build_targets,
    registered_passes,
    run_lint,
)
from repro.codes import MAKERS
from repro.obs.metrics import Metrics

EXPECTED_PASSES = {
    "applicability",
    "schedule-legality",
    "uov-certificate",
    "uov-symbolic-certificate",
    "storage-race",
    "storage-accounting",
    "differential-fuzz",
}


class TestRegistry:
    def test_all_builtin_passes_registered(self):
        assert set(registered_passes()) == EXPECTED_PASSES

    def test_fuzz_is_off_by_default(self):
        assert not registered_passes()["differential-fuzz"].default

    def test_symbolic_is_off_by_default(self):
        assert not registered_passes()["uov-symbolic-certificate"].default

    def test_every_code_has_lint_sizes(self):
        assert set(LINT_SIZES) == set(MAKERS)

    def test_lint_sizes_are_not_powers_of_two(self):
        for sizes in LINT_SIZES.values():
            assert any(n & (n - 1) for n in sizes.values()), sizes


class TestTargets:
    def test_targets_cover_registry(self):
        targets = build_targets()
        assert [t.name for t in targets] == sorted(MAKERS)
        for target in targets:
            assert target.versions and target.stencil.dim == len(target.bounds)

    def test_unknown_code_raises_before_analysis(self):
        with pytest.raises(KeyError, match="unknown code"):
            build_targets(["nosuch"])


class TestDriver:
    def test_corpus_lints_clean(self):
        """The acceptance bar: only the rolling buffers' expected
        schedule-dependence infos; exit 0 at both thresholds."""
        diag = run_lint(diag=Diagnostics(metrics=Metrics()))
        assert {f.code for f in diag} == {"RACE002"}
        assert all(
            f.subject.endswith("/storage-optimized") for f in diag
        )
        assert diag.exit_code(Severity.ERROR) == 0
        assert diag.exit_code(Severity.WARNING) == 0

    def test_single_code_single_pass(self):
        diag = run_lint(
            codes=["stencil5"],
            passes=["uov-certificate"],
            diag=Diagnostics(metrics=Metrics()),
        )
        assert len(diag) == 0

    def test_unknown_pass_raises(self):
        with pytest.raises(KeyError, match="unknown lint pass"):
            run_lint(passes=["nosuch"], diag=Diagnostics(metrics=Metrics()))

    def test_metrics_record_findings(self):
        metrics = Metrics()
        run_lint(
            codes=["simple2d"],
            passes=["storage-race"],
            diag=Diagnostics(metrics=metrics),
        )
        counters = metrics.snapshot()["counters"]
        assert counters["lint.findings.RACE002"] >= 1
        assert "lint.findings.RACE001" not in counters
        assert "lint.findings.RACE003" not in counters

    def test_fuzz_budget_enables_the_fuzz_pass(self):
        from repro.obs import metrics as metrics_mod

        global_counters = metrics_mod.get_metrics()
        before = global_counters.snapshot()["counters"].get(
            "lint.fuzz.samples", 0
        )
        diag = run_lint(
            codes=["simple2d"], fuzz=2, diag=Diagnostics(metrics=Metrics())
        )
        after = global_counters.snapshot()["counters"].get(
            "lint.fuzz.samples", 0
        )
        assert after > before
        assert not any(f.code == "FUZ001" for f in diag)


class TestSymbolicPass:
    def test_symbolic_flag_enables_the_pass(self):
        from repro.analysis.passes import select_passes

        names = [p.name for p in select_passes(symbolic=True)]
        assert "uov-symbolic-certificate" in names
        assert "uov-symbolic-certificate" not in [
            p.name for p in select_passes()
        ]

    def test_corpus_certifies_symbolically(self):
        """Every shipped OV mapping is parametrically safe: no SYM
        findings at all (not even degradations) across the corpus."""
        diag = run_lint(symbolic=True, diag=Diagnostics(metrics=Metrics()))
        assert not any(f.code.startswith("SYM") for f in diag)
        assert diag.exit_code(Severity.ERROR) == 0

    def test_bad_ov_emits_sym001(self):
        """A non-universal OV smuggled into a version's mapping is caught
        parametrically, with minimal witness sizes in the payload."""
        import dataclasses

        from repro.analysis.passes import build_target, lint_target
        from repro.codes import get_versions

        from repro.analysis.certify import ov_mapping_for
        from repro.util.polyhedron import Polytope

        versions = dict(get_versions("simple2d"))
        good = versions["ov"]

        def bad_factory(sizes):
            isg = Polytope.from_loop_bounds(good.code.bounds(sizes))
            return ov_mapping_for((0, 1), isg)

        versions["ov"] = dataclasses.replace(
            good, mapping_factory=bad_factory
        )
        target = build_target(
            "simple2d", versions, LINT_SIZES["simple2d"]
        )
        diag = lint_target(
            target,
            passes=["uov-symbolic-certificate"],
            diag=Diagnostics(metrics=Metrics()),
        )
        findings = [f for f in diag if f.code == "SYM001"]
        assert len(findings) == 1
        assert findings[0].data["witness_sizes"]
        assert findings[0].data["confirmed"] is True

        # The enumerative pass on the same target records the grown
        # replay box in its payload, so a JSON consumer can reproduce
        # the clobber without re-deriving the bounds.
        diag = lint_target(
            target,
            passes=["uov-certificate"],
            diag=Diagnostics(metrics=Metrics()),
        )
        (uov,) = [f for f in diag if f.code == "UOV001"]
        assert uov.data["replayable"] is True
        assert uov.data["bounds"] is not None
        assert all(len(pair) == 2 for pair in uov.data["bounds"])
        assert uov.data["writer"] is not None
        assert uov.data["victim"] is not None
