"""Static storage-race detection vs. the dynamic ground truth."""

import pytest

from repro.analysis.liveness import find_mapping_violation
from repro.analysis.races import (
    ForcedBeforeIndex,
    find_storage_races,
    race_witness,
    region_points,
)
from repro.core.stencil import Stencil
from repro.mapping.optimized import RollingBufferMapping
from repro.mapping.ov2d import OVMapping2D
from repro.mapping.padding import PaddedOVMapping2D
from repro.util.polyhedron import Polytope

BOUNDS = ((1, 6), (0, 6))  # non-power-of-two inner extent 7


@pytest.fixture
def box():
    return Polytope.from_loop_bounds(BOUNDS)


class TestRaceFreedom:
    def test_uov_mapping_has_no_races(self, fig1_stencil, box):
        mapping = OVMapping2D((1, 1), box)
        assert find_storage_races(mapping, fig1_stencil, box) == []

    def test_trivial_uov_mapping_has_no_races(self, fig1_stencil, box):
        mapping = OVMapping2D((2, 2), box)
        assert find_storage_races(mapping, fig1_stencil, box) == []

    def test_padded_mapping_inherits_race_freedom(self, stencil5):
        box = Polytope.from_loop_bounds(((1, 5), (0, 8)))
        mapping = PaddedOVMapping2D((2, 0), box, pad=3)
        assert find_storage_races(mapping, stencil5, box) == []

    def test_injective_mapping_cannot_race(self, fig1_stencil, box):
        class Natural:
            def collision_groups(self, points):
                return {i: [tuple(p)] for i, p in enumerate(points)}

        assert find_storage_races(Natural(), fig1_stencil, box) == []


class TestRaceDetection:
    def test_non_uov_mapping_races(self, fig1_stencil, box):
        # (1, 0) skips the (0, 1) dependence: real races must surface.
        mapping = OVMapping2D((1, 0), box)
        races = find_storage_races(mapping, fig1_stencil, box)
        assert races
        for race in races:
            assert mapping(race.first) == mapping(race.second) == race.location

    def test_rolling_buffer_races_under_foreign_schedules(
        self, fig1_stencil, box
    ):
        mapping = RollingBufferMapping(fig1_stencil, box)
        races = find_storage_races(mapping, fig1_stencil, box)
        assert races, "minimal storage must be schedule-dependent"

    def test_limit_caps_the_scan(self, fig1_stencil, box):
        mapping = RollingBufferMapping(fig1_stencil, box)
        assert len(find_storage_races(mapping, fig1_stencil, box, limit=1)) == 1

    def test_witness_replays_to_dynamic_violation(self, fig1_stencil, box):
        mapping = RollingBufferMapping(fig1_stencil, box)
        race = find_storage_races(mapping, fig1_stencil, box, limit=1)[0]
        order = race_witness(mapping, fig1_stencil, BOUNDS, race)
        assert order is not None
        assert find_mapping_violation(mapping, fig1_stencil, order) is not None

    def test_str_is_informative(self, fig1_stencil, box):
        mapping = RollingBufferMapping(fig1_stencil, box)
        race = find_storage_races(mapping, fig1_stencil, box, limit=1)[0]
        text = str(race)
        assert "share location" in text and str(race.location) in text


class TestForcedBeforeIndex:
    def test_dead_before_matches_cone_geometry(self, fig1_stencil, box):
        index = ForcedBeforeIndex(fig1_stencil, box)
        points = set(region_points(box))
        # (1, 1)'s value is consumed by (1, 2), (2, 1), (2, 2) — all in
        # DONE of (3, 3), so it is dead before (3, 3) in every schedule.
        assert index.dead_before((1, 1), (3, 3), points) is None
        # (3, 3) is not even executed before (1, 1) necessarily.
        assert index.dead_before((3, 3), (1, 1), points) == (3, 3)

    def test_done_sets_are_memoised(self, fig1_stencil, box):
        index = ForcedBeforeIndex(fig1_stencil, box)
        assert index.done((4, 4)) is index.done((4, 4))

    def test_region_points_respects_shape(self, fig3_isg):
        points = region_points(fig3_isg)
        assert all(fig3_isg.contains(p) for p in points)
        lower, upper = fig3_isg.bounding_box()
        # The parallelogram is a strict subset of its bounding box.
        n_box = (upper[0] - lower[0] + 1) * (upper[1] - lower[1] + 1)
        assert 0 < len(points) < n_box
