"""Array region analysis."""

import pytest

from repro.analysis.regions import Box, analyse_regions
from repro.codes import make_simple2d, make_stencil5


class TestBox:
    def test_basic(self):
        b = Box((0, 0), (3, 4))
        assert b.count() == 20
        assert b.contains((3, 4)) and not b.contains((4, 0))
        assert b.shifted((1, -1)) == Box((1, -1), (4, 3))

    def test_union_hull(self):
        a = Box((0, 0), (2, 2))
        b = Box((1, 1), (4, 3))
        assert a.union_hull(b) == Box((0, 0), (4, 3))

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            Box((2,), (1,))


class TestRegions:
    def test_simple2d(self):
        program = next(iter(make_simple2d().values())).code.program
        sizes = {"n": 5, "m": 7}
        summary = analyse_regions(program, sizes)["A"]
        # Written region: the whole interior.
        assert summary.written == Box((1, 1), (5, 7))
        # Read region reaches one row/column back.
        assert summary.read == Box((0, 0), (5, 7))
        # Imported: row 0 and column 0 (read, never written first).
        assert (0, 3) in summary.imported
        assert (3, 0) in summary.imported
        assert (2, 2) not in summary.imported
        # All interior values are temporaries (not live out).
        assert not summary.live_out
        assert summary.temporary_count == 5 * 7

    def test_stencil5_imports_row_zero_and_guards(self):
        program = next(iter(make_stencil5().values())).code.program
        sizes = {"T": 4, "L": 10}
        summary = analyse_regions(program, sizes)["A"]
        # Row zero is imported across the reach of the stencil.
        assert (0, 5) in summary.imported
        # Out-of-range columns are imported at every time step (the
        # constant boundary of the real code).
        assert (2, -1) in summary.imported
        assert (2, 10) in summary.imported
        # Interior values are written before read.
        assert (2, 5) not in summary.imported

    def test_unbound_sizes_rejected(self):
        program = next(iter(make_stencil5().values())).code.program
        with pytest.raises(ValueError):
            analyse_regions(program, {"T": 4})

    def test_imported_count_matches_enumeration(self):
        program = next(iter(make_simple2d().values())).code.program
        summary = analyse_regions(program, {"n": 3, "m": 3})["A"]
        # border row (0,0..3) and column (1..3, 0): 4 + 3 elements
        expected = {(0, j) for j in range(4)} | {
            (i, 0) for i in range(1, 4)
        }
        assert summary.imported == frozenset(expected)
