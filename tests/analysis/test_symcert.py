"""Size-parametric UOV certification."""

import json

import pytest

from repro.analysis.certify import UOVCertificate, UOVCounterexample, certify
from repro.analysis.symcert import (
    SymbolicBounds,
    SymbolicCertificate,
    SymbolicCounterexample,
    symbolic_certify,
    symbolic_certify_code,
    symbolic_certify_spec,
)
from repro.codes import CODES, get_versions
from repro.codes.psm import PSM_SPEC
from repro.core.stencil import Stencil
from repro.ir.affine import AffineExpr

FIG1 = Stencil([(1, 0), (0, 1), (1, 1)])


def fig1_bounds():
    return SymbolicBounds(
        indices=("i", "j"),
        bounds=(
            (AffineExpr.parse(1), AffineExpr.parse("n")),
            (AffineExpr.parse(1), AffineExpr.parse("m")),
        ),
        params=("n", "m"),
    )


class TestCertificates:
    def test_paper_uov_certifies_parametrically(self):
        result = symbolic_certify((1, 1), FIG1, bounds=fig1_bounds())
        assert isinstance(result, SymbolicCertificate)
        assert result.verify()
        assert set(result.rows) == set(FIG1.vectors)

    def test_certificate_has_auditable_proof(self):
        result = symbolic_certify((1, 1), FIG1)
        assert isinstance(result, SymbolicCertificate)
        assert result.trace  # one elimination record per stencil vector
        assert all("system" in step for step in result.trace)

    def test_certificate_json_round_trip(self):
        result = symbolic_certify((2, 2), FIG1, bounds=fig1_bounds())
        blob = json.dumps(result.to_json())
        back = SymbolicCertificate.from_json(json.loads(blob))
        assert back.ov == result.ov
        assert back.rows == result.rows
        assert back.verify()
        assert back.bounds is not None and back.bounds.params == ("n", "m")

    def test_zero_vector_rejected(self):
        with pytest.raises(ValueError):
            symbolic_certify((0, 0), FIG1)

    def test_dimension_mismatch_rejected(self):
        with pytest.raises(ValueError):
            symbolic_certify((1, 1, 1), FIG1)


class TestCounterexamples:
    def test_rejection_with_witness_sizes(self):
        result = symbolic_certify((0, 1), FIG1, bounds=fig1_bounds())
        assert isinstance(result, SymbolicCounterexample)
        assert result.failing_vector in FIG1.vectors
        # The violation box found minimal concrete sizes and they are
        # confirmed by the enumerative replay.
        assert result.witness_sizes is not None
        assert all(v >= 1 for v in result.witness_sizes.values())
        assert result.confirmed
        assert result.size_conditions  # projection onto (n, m)

    def test_rejection_agrees_with_enumerative(self):
        for ov in ((1, 0), (0, 1), (3, -1)):
            symbolic = symbolic_certify(ov, FIG1)
            enumerative = certify(ov, FIG1)
            assert isinstance(symbolic, SymbolicCounterexample) == isinstance(
                enumerative, UOVCounterexample
            )

    def test_counterexample_json(self):
        result = symbolic_certify((1, 0), FIG1, bounds=fig1_bounds())
        record = result.to_json()
        assert record["verdict"] == "rejected"
        assert record["parametric"] is True
        assert record["confirmed"] is True


class TestCodeLevel:
    @pytest.mark.parametrize("name", sorted(CODES.as_dict()))
    def test_builtin_codes_certify_parametrically(self, name):
        from repro.analysis.passes import LINT_SIZES

        versions = get_versions(name)
        code = next(iter(versions.values())).code
        outcome = symbolic_certify_code(
            code, code.stencil.initial_uov, sizes=LINT_SIZES[name]
        )
        assert outcome.verdict == "universal", (
            name,
            outcome.degradation,
        )
        assert outcome.certificate.verify()
        assert outcome.agreement is True

    @pytest.mark.parametrize("name", sorted(CODES.as_dict()))
    def test_version_ovs_certify(self, name):
        """Every OV an actual shipped version uses is parametrically safe."""
        from repro.analysis.passes import LINT_SIZES
        from repro.mapping.ov2d import OVMapping2D
        from repro.mapping.ovnd import OVMappingND

        versions = get_versions(name)
        code = next(iter(versions.values())).code
        for key, version in versions.items():
            mapping = version.mapping(LINT_SIZES[name])
            if not isinstance(mapping, (OVMapping2D, OVMappingND)):
                continue
            outcome = symbolic_certify_code(
                code, tuple(mapping.ov), sizes=LINT_SIZES[name]
            )
            assert outcome.verdict == "universal", (name, key)

    def test_bad_ov_rejected_with_enumerative_backing(self):
        versions = get_versions("simple2d")
        code = next(iter(versions.values())).code
        outcome = symbolic_certify_code(code, (0, 1))
        assert outcome.verdict == "rejected"
        assert outcome.agreement is True
        assert isinstance(outcome.enumerative, UOVCounterexample)


class TestSpecLevel:
    def test_example_specs_certify(self):
        from repro.frontend.spec import validate_spec

        for path in (
            "examples/specs/heat7.json",
            "examples/specs/relax3.json",
        ):
            with open(path) as fh:
                spec = validate_spec(json.load(fh))
            outcome = symbolic_certify_spec(spec)
            assert outcome.verdict == "universal", (path, outcome.degradation)
            assert outcome.agreement is True

    def test_hook_spec_degrades_never_wrong(self):
        """Opaque SemanticsHook combines degrade with a structured record
        — the enumerative verdict is the one the caller must trust."""
        outcome = symbolic_certify_spec(PSM_SPEC)
        assert outcome.verdict == "degraded"
        assert outcome.degradation is not None
        assert outcome.degradation.reason == "opaque-semantics"
        assert outcome.degradation.fallback == "enumerative-certify"
        assert isinstance(outcome.enumerative, UOVCertificate)
        # Degraded outcomes never claim a symbolic verdict.
        assert outcome.certificate is None
        assert outcome.counterexample is None
        assert outcome.agreement is None


class TestIrregularBounds:
    def test_model_mismatch_degrades(self):
        """A bounds callable the affine IR does not reproduce degrades."""
        import dataclasses

        versions = get_versions("simple2d")
        code = next(iter(versions.values())).code
        warped = dataclasses.replace(
            code,
            bounds=lambda sizes: tuple(
                (lo, hi + 1) for lo, hi in code.bounds(sizes)
            ),
        )
        outcome = symbolic_certify_code(
            warped, code.stencil.initial_uov, sizes={"n": 6, "m": 7}
        )
        assert outcome.verdict == "degraded"
        assert outcome.degradation.reason == "irregular-bounds"
        assert isinstance(outcome.enumerative, UOVCertificate)
