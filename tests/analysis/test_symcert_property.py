"""Property: the symbolic verdict equals the enumerative verdict.

The symbolic engine decides UOV safety once, for all box sizes; the
enumerative certifier decides it per-stencil (its cone search is also
size-independent).  Hypothesis drives randomized stencils and candidate
vectors through both and additionally replays universal verdicts through
the dynamic checker at several concrete box sizes, including
non-power-of-two ones.
"""

from hypothesis import given, settings, strategies as st

from repro.analysis.certify import UOVCertificate, certify, ov_mapping_for
from repro.analysis.liveness import find_mapping_violation
from repro.analysis.symcert import symbolic_certify, SymbolicCertificate
from repro.core.stencil import Stencil
from repro.schedule.random_legal import sample_legal_orders
from repro.util.fm import FMBudgetExceeded
from repro.util.polyhedron import Polytope

# Box extents the universal verdict is spot-checked at: at least three,
# including non-powers-of-two.
EXTENTS = (3, 5, 7)


def vectors_strategy(dim):
    coord = st.integers(min_value=-2, max_value=2)
    vec = st.tuples(*[coord] * dim)
    # A stencil needs at least one lexicographically positive vector;
    # filter rather than construct so shrinking stays simple.
    return st.lists(vec, min_size=1, max_size=4).filter(
        lambda vs: any(v > (0,) * dim for v in vs)
    )


def build_stencil(vectors, dim):
    kept = sorted({v for v in vectors if v > (0,) * dim})
    return Stencil(kept)


@settings(max_examples=60, deadline=None)
@given(
    dim=st.integers(min_value=2, max_value=3),
    data=st.data(),
)
def test_symbolic_matches_enumerative(dim, data):
    vectors = data.draw(vectors_strategy(dim), label="stencil vectors")
    stencil = build_stencil(vectors, dim)
    coord = st.integers(min_value=-2, max_value=3)
    ov = data.draw(st.tuples(*[coord] * dim), label="candidate ov")
    if all(c == 0 for c in ov):
        ov = stencil.initial_uov

    try:
        symbolic = symbolic_certify(ov, stencil)
    except FMBudgetExceeded:
        return  # budget exhaustion is an allowed, visible outcome
    enumerative = certify(ov, stencil)

    sym_universal = isinstance(symbolic, SymbolicCertificate)
    enum_universal = isinstance(enumerative, UOVCertificate)
    assert sym_universal == enum_universal, (
        f"disagreement for ov={ov} stencil={stencil.vectors}: "
        f"symbolic={type(symbolic).__name__} "
        f"enumerative={type(enumerative).__name__}"
    )

    if not sym_universal:
        # A rejection must be backed by a replayed clobber whenever the
        # enumerative counterexample is replayable at all (degenerate
        # geometries — e.g. backwards OVs — legitimately are not).
        if enumerative.replayable:
            assert symbolic.confirmed, (
                f"unconfirmed symbolic rejection for ov={ov} "
                f"stencil={stencil.vectors}"
            )
        return

    # Universal claims are cheap to check dynamically: no legal execution
    # order at any spot-checked size may clobber a pending value.
    assert symbolic.verify()
    for extent in EXTENTS:
        box = tuple((0, extent - 1) for _ in range(dim))
        mapping = ov_mapping_for(ov, Polytope.from_loop_bounds(box))
        for order in sample_legal_orders(stencil, box, samples=2, seed=extent):
            assert (
                find_mapping_violation(mapping, stencil, order) is None
            ), f"dynamic violation at extent {extent} for ov={ov}"
