"""Code generation: executable Python twins, C structure, unrolling."""

import numpy as np
import pytest

from repro.codegen import build_runner, generate_c, generate_python
from repro.codegen.unroll import unroll_offsets, unrollable_modulus
from repro.codes import make_jacobi, make_psm, make_simple2d, make_stencil5
from repro.execution import execute
from repro.mapping import OVMapping2D, RollingBufferMapping
from repro.util.polyhedron import Polytope


def assert_generated_matches_interpreter(version, sizes, unroll=False):
    source = generate_python(version, sizes, unroll_mod=unroll)
    run = build_runner(source)
    code = version.code
    ctx = code.make_context(sizes, 0)
    storage = np.zeros(version.mapping(sizes).size)
    run(storage, ctx, code.combine, code.input_value)
    reference = execute(version, sizes)
    assert np.array_equal(storage, reference.storage), source


ALL_CASES = [
    (make_stencil5, "natural", {"T": 5, "L": 16}),
    (make_stencil5, "ov", {"T": 5, "L": 16}),
    (make_stencil5, "ov-interleaved", {"T": 5, "L": 16}),
    (make_stencil5, "ov-tiled", {"T": 5, "L": 16}),
    (make_stencil5, "ov-interleaved-tiled", {"T": 5, "L": 16}),
    (make_stencil5, "storage-optimized", {"T": 5, "L": 16}),
    (make_psm, "natural", {"n0": 7, "n1": 9}),
    (make_psm, "ov", {"n0": 7, "n1": 9}),
    (make_psm, "ov-tiled", {"n0": 7, "n1": 9}),
    (make_psm, "ov-optimal", {"n0": 7, "n1": 9}),
    (make_psm, "storage-optimized", {"n0": 7, "n1": 9}),
    (make_simple2d, "ov", {"n": 6, "m": 8}),
    (make_simple2d, "ov-tiled", {"n": 6, "m": 8}),
    (make_jacobi, "ov-tiled", {"T": 4, "L": 12}),
]


class TestPythonGeneration:
    @pytest.mark.parametrize(
        "maker,key,sizes",
        ALL_CASES,
        ids=[f"{m.__name__}-{k}" for m, k, s in ALL_CASES],
    )
    def test_generated_source_matches_interpreter(self, maker, key, sizes):
        assert_generated_matches_interpreter(maker()[key], sizes)

    @pytest.mark.parametrize(
        "maker,key,sizes",
        [
            (make_stencil5, "ov", {"T": 5, "L": 16}),
            (make_stencil5, "ov-interleaved", {"T": 5, "L": 17}),
            (make_psm, "ov", {"n0": 7, "n1": 9}),
            (make_jacobi, "ov", {"T": 4, "L": 13}),
        ],
        ids=["s5-ov", "s5-inter", "psm-ov", "jacobi-ov"],
    )
    def test_unrolled_matches_interpreter(self, maker, key, sizes):
        assert_generated_matches_interpreter(maker()[key], sizes, unroll=True)

    def test_unrolled_source_has_no_inner_mod(self):
        version = make_psm()["ov"]
        source = generate_python(version, {"n0": 8, "n1": 8}, unroll_mod=True)
        main_loop, _, cleanup = source.partition("# cleanup")
        body_lines = [
            ln
            for ln in source.splitlines()
            if "storage[" in ln and "range" not in ln
        ]
        # The unrolled main-body addresses are mod-free; only the short
        # remainder loop may keep one.
        mod_lines = [ln for ln in body_lines if "%" in ln]
        assert len(mod_lines) < len(body_lines) / 2

    def test_wavefront_generation(self):
        from dataclasses import replace

        from repro.schedule import WavefrontSchedule

        version = replace(
            make_simple2d()["ov"],
            key="ov-wavefront",
            schedule_factory=lambda s: WavefrontSchedule((1, 1)),
        )
        assert_generated_matches_interpreter(version, {"n": 6, "m": 7})

    def test_unsupported_schedule_raises(self):
        from dataclasses import replace

        from repro.schedule import WavefrontSchedule

        version = replace(
            make_simple2d()["ov"],
            schedule_factory=lambda s: WavefrontSchedule((2, 1)),
        )
        with pytest.raises(NotImplementedError):
            generate_python(version, {"n": 4, "m": 4})


class TestCGeneration:
    @pytest.mark.parametrize(
        "maker,key,sizes",
        [
            (make_stencil5, "natural", {"T": 4, "L": 12}),
            (make_stencil5, "ov-tiled", {"T": 4, "L": 12}),
            (make_psm, "storage-optimized", {"n0": 5, "n1": 6}),
        ],
        ids=["natural", "ov-tiled", "psm-so"],
    )
    def test_structural_properties(self, maker, key, sizes):
        version = maker()[key]
        source = generate_c(version, sizes)
        assert source.count("{") == source.count("}")
        assert "void run(" in source
        assert source.count("storage[") >= 2  # loads and a store
        assert version.key in source

    def test_tiled_c_has_tile_loops(self):
        source = generate_c(make_stencil5()["ov-tiled"], {"T": 4, "L": 12})
        assert "t0 +=" in source and "t1 +=" in source
        assert "continue;" in source  # the skew guard

    def test_spec_combine_is_inlined(self):
        # Spec-expressed codes (weighted-sum / expr) carry no reader-
        # supplied macro: the combine is a concrete inlined expression
        # and the function pointer is never called.
        source = generate_c(make_stencil5()["ov"], {"T": 4, "L": 12})
        assert "combine(v" not in source
        # 0.4 as a C99 hex literal: exact bit pattern, no decimal rounding.
        assert (0.4).hex() in source

    def test_hook_combine_keeps_function_pointer(self):
        # psm's semantics are a SemanticsHook (data-dependent table
        # reads); only hooks keep the combine function-pointer form.
        source = generate_c(make_psm()["ov"], {"n0": 5, "n1": 6})
        assert "combine(v, qq)" in source

    def test_mod_is_sign_safe_in_c(self):
        # Python's % floors, C's truncates: the emitted form must agree
        # with the interpreter for negative operands too.
        source = generate_c(make_psm()["ov"], {"n0": 5, "n1": 6})
        assert "% 2 + 2) % 2" in source

    def test_pointers_are_restrict_qualified(self):
        source = generate_c(make_stencil5()["natural"], {"T": 4, "L": 12})
        assert "double *restrict storage" in source
        assert "const double *restrict halo" in source

    @pytest.mark.skipif(
        __import__(
            "repro.codegen.build", fromlist=["discover_toolchain"]
        ).discover_toolchain()
        is None,
        reason="no C toolchain on PATH",
    )
    @pytest.mark.parametrize(
        "maker,key,sizes",
        ALL_CASES,
        ids=[f"{m.__name__}-{k}" for m, k, s in ALL_CASES],
    )
    def test_emitted_c_compile_checks_clean(self, maker, key, sizes, tmp_path):
        import subprocess

        from repro.codegen.build import discover_toolchain

        toolchain = discover_toolchain()
        source = generate_c(maker()[key], sizes)
        c_file = tmp_path / "gen.c"
        c_file.write_text(source)
        result = subprocess.run(
            [
                toolchain.cc,
                "-std=c99",
                "-Wall",
                "-Werror",
                "-fsyntax-only",
                str(c_file),
            ],
            capture_output=True,
            text=True,
            timeout=120,
        )
        assert result.returncode == 0, result.stderr + "\n" + source


class TestUnrollHelpers:
    def test_period_of_stencil5_uov(self):
        isg = Polytope.from_box((1, 0), (8, 15))
        m = OVMapping2D((2, 0), isg)
        # class functional is t-based: constant along the inner loop.
        assert unrollable_modulus(m, inner_axis=1) == 1
        assert unrollable_modulus(m, inner_axis=0) == 2

    def test_period_of_psm_uov(self):
        isg = Polytope.from_box((1, 1), (8, 8))
        m = OVMapping2D((2, 2), isg)
        assert unrollable_modulus(m, inner_axis=1) == 2

    def test_prime_has_no_period(self):
        isg = Polytope.from_box((0, 0), (8, 8))
        assert unrollable_modulus(OVMapping2D((1, 1), isg), 1) == 1

    def test_rolling_buffer_not_unrollable(self, fig1_stencil):
        isg = Polytope.from_box((1, 1), (5, 5))
        rb = RollingBufferMapping(fig1_stencil, isg)
        assert unrollable_modulus(rb, 1) == 1

    def test_offsets_cycle_correctly(self):
        isg = Polytope.from_box((1, 1), (8, 8))
        m = OVMapping2D((2, 2), isg)
        offsets = unroll_offsets(m, inner_axis=1, start=(1, 1))
        assert len(offsets) == 2
        assert offsets == [m.storage_class((1, 1)), m.storage_class((1, 2))]
