"""REPRO_CC_SANITIZE: sanitizer flags, cache slots, failure modes."""

import os

import pytest

from repro.codegen.build import (
    SANITIZE_ENV,
    CompileError,
    discover_toolchain,
    reset_toolchain_cache,
    sanitize_flags,
    toolchain_fingerprint,
)


@pytest.fixture
def sanitize_env(monkeypatch):
    """Each test picks its own REPRO_CC_SANITIZE; the toolchain probe
    cache is reset around it so the env is actually consulted."""
    monkeypatch.delenv(SANITIZE_ENV, raising=False)
    reset_toolchain_cache()
    yield monkeypatch
    reset_toolchain_cache()


class TestFlagParsing:
    def test_unset_means_no_flags(self, sanitize_env):
        assert sanitize_flags() == ()

    def test_empty_means_no_flags(self, sanitize_env):
        sanitize_env.setenv(SANITIZE_ENV, "")
        assert sanitize_flags() == ()

    def test_address(self, sanitize_env):
        sanitize_env.setenv(SANITIZE_ENV, "address")
        flags = sanitize_flags()
        assert "-fsanitize=address" in flags
        assert "-g" in flags and "-fno-omit-frame-pointer" in flags

    def test_undefined(self, sanitize_env):
        sanitize_env.setenv(SANITIZE_ENV, "undefined")
        flags = sanitize_flags()
        assert "-fsanitize=undefined" in flags
        assert "-fno-sanitize-recover=undefined" in flags

    def test_both_comma_separated(self, sanitize_env):
        sanitize_env.setenv(SANITIZE_ENV, "address,undefined")
        flags = sanitize_flags()
        assert "-fsanitize=address" in flags
        assert "-fsanitize=undefined" in flags

    def test_unknown_sanitizer_raises(self, sanitize_env):
        sanitize_env.setenv(SANITIZE_ENV, "addres")
        with pytest.raises(CompileError, match="addres"):
            sanitize_flags()


class TestToolchainIntegration:
    def test_sanitized_toolchain_carries_the_flags(self, sanitize_env):
        sanitize_env.setenv(SANITIZE_ENV, "undefined")
        tc = discover_toolchain()
        if tc is None:
            pytest.skip("no C toolchain in this environment")
        assert "-fsanitize=undefined" in tc.flags

    def test_fingerprint_gets_its_own_cache_slot(self, sanitize_env):
        plain = toolchain_fingerprint()
        reset_toolchain_cache()
        sanitize_env.setenv(SANITIZE_ENV, "undefined")
        sanitized = toolchain_fingerprint()
        if discover_toolchain() is None:
            pytest.skip("no C toolchain in this environment")
        # Distinct fingerprints => sanitized .so objects can never be
        # served from (or poison) the plain cache slot.
        assert plain != sanitized
