"""The benchmark codes: storage formulas, version structure, equivalence."""

import pytest

from repro.analysis.dependence import extract_stencil
from repro.analysis.legality import check_uov_applicability
from repro.codes import make_jacobi, make_psm, make_simple2d, make_stencil5
from repro.core import find_optimal_uov, is_uov
from repro.execution import verify_versions

CODES = {
    "simple2d": (make_simple2d, {"n": 7, "m": 9}),
    "stencil5": (make_stencil5, {"T": 5, "L": 18}),
    "psm": (make_psm, {"n0": 8, "n1": 10}),
    "jacobi": (make_jacobi, {"T": 5, "L": 14}),
}


@pytest.mark.parametrize("name", CODES)
class TestEveryCode:
    def test_all_versions_equivalent(self, name):
        maker, sizes = CODES[name]
        verify_versions(maker().values(), sizes, seed=2)

    def test_ir_stencil_matches(self, name):
        maker, _ = CODES[name]
        code = next(iter(maker().values())).code
        assert extract_stencil(code.program) == code.stencil

    def test_applicability(self, name):
        maker, sizes = CODES[name]
        code = next(iter(maker().values())).code
        assert check_uov_applicability(code.program, sizes)

    def test_storage_formula_matches_allocation(self, name):
        maker, sizes = CODES[name]
        for key, version in maker().items():
            declared = version.storage(sizes)
            allocated = version.mapping(sizes).size
            assert declared == allocated, (key, declared, allocated)

    def test_schedules_are_legal(self, name):
        maker, sizes = CODES[name]
        for key, version in maker().items():
            sched = version.schedule(sizes)
            assert sched.is_legal_for(
                version.code.stencil, version.bounds(sizes)
            ), key

    def test_untilable_versions_marked(self, name):
        maker, _ = CODES[name]
        versions = maker()
        assert not versions["storage-optimized"].tilable
        assert all(
            v.tilable for k, v in versions.items() if k != "storage-optimized"
        )


class TestDeclaredUovs:
    def test_stencil5_uov_is_optimal(self):
        code = next(iter(make_stencil5().values())).code
        result = find_optimal_uov(code.stencil)
        assert result.ov == (2, 0) and result.optimal

    def test_jacobi_uov_is_optimal(self):
        code = next(iter(make_jacobi().values())).code
        result = find_optimal_uov(code.stencil)
        assert result.ov == (2, 0)

    def test_simple2d_uov_is_optimal(self):
        code = next(iter(make_simple2d().values())).code
        assert find_optimal_uov(code.stencil).ov == (1, 1)

    def test_psm_paper_uov_is_initial_not_optimal(self):
        from repro.codes.psm import PSM_OPTIMAL_UOV, PSM_PAPER_UOV

        code = next(iter(make_psm().values())).code
        assert code.stencil.initial_uov == PSM_PAPER_UOV
        assert is_uov(PSM_PAPER_UOV, code.stencil)
        assert find_optimal_uov(code.stencil).ov == PSM_OPTIMAL_UOV


class TestPaperStorageNumbers:
    def test_table1(self):
        sizes = {"T": 16, "L": 100}
        v = make_stencil5()
        assert v["natural"].storage(sizes) == 1600
        assert v["ov"].storage(sizes) == 200
        assert v["ov-interleaved"].storage(sizes) == 200
        assert v["storage-optimized"].storage(sizes) == 103

    def test_table2(self):
        sizes = {"n0": 50, "n1": 60}
        v = make_psm()
        assert v["natural"].storage(sizes) == 3000
        assert v["ov"].storage(sizes) == 2 * (50 + 60 - 1)
        assert v["ov-optimal"].storage(sizes) == 109
        assert v["storage-optimized"].storage(sizes) == 103

    def test_fig1(self):
        sizes = {"n": 10, "m": 20}
        v = make_simple2d()
        assert v["natural"].storage(sizes) == 200
        assert v["ov"].storage(sizes) == 29
        assert v["storage-optimized"].storage(sizes) == 22


class TestTileParameterisation:
    def test_tile_sizes_flow_from_size_binding(self):
        version = make_stencil5()["ov-tiled"]
        sched = version.schedule({"T": 8, "L": 32, "tile_h": 2, "tile_w": 5})
        assert sched.tile_sizes == (2, 5)

    def test_default_tiles(self):
        version = make_psm()["ov-tiled"]
        sched = version.schedule({"n0": 8, "n1": 8})
        assert sched.tile_sizes == (48, 48)
