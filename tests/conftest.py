"""Shared fixtures: the paper's stencils and ISGs, reused across the suite."""

from __future__ import annotations

import pytest

from repro.core.stencil import Stencil
from repro.util.polyhedron import Polytope


@pytest.fixture
def fig1_stencil() -> Stencil:
    """Figure 1's 3-point recurrence stencil."""
    return Stencil([(1, 0), (0, 1), (1, 1)])


@pytest.fixture
def stencil5() -> Stencil:
    """The 5-point 1-D stencil over time (Section 5)."""
    return Stencil([(1, -2), (1, -1), (1, 0), (1, 1), (1, 2)])


@pytest.fixture
def fig2_stencil() -> Stencil:
    """The Figure 2/3 stencil, reconstructed from the Figure 3 numbers."""
    return Stencil([(1, 0), (1, 1), (1, -1)])


@pytest.fixture
def fig3_isg() -> Polytope:
    """Figure 3's parallelogram ISG with the implied fourth vertex."""
    return Polytope([(1, 1), (1, 6), (10, 9), (10, 4)])


@pytest.fixture
def small_box() -> Polytope:
    return Polytope.from_box((0, 0), (7, 9))
