"""Integer cone membership: the feasibility kernel of Section 3."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.cone import (
    ConeSolver,
    coefficient_bound,
    dead_set,
    done_set,
    in_integer_cone,
    in_rational_cone,
    positivity_functional,
)
from repro.core.stencil import Stencil
from repro.util.polyhedron import Polytope

from .test_stencil import lex_positive_vectors


def brute_force_in_cone(target, vectors, cap=6):
    """Independent oracle: enumerate small coefficient combinations."""
    import itertools

    for coeffs in itertools.product(range(cap + 1), repeat=len(vectors)):
        point = tuple(
            sum(c * v[k] for c, v in zip(coeffs, vectors))
            for k in range(len(target))
        )
        if point == tuple(target):
            return dict(
                (tuple(v), c) for v, c in zip(vectors, coeffs) if c
            )
    return None


class TestPositivityFunctional:
    def test_known(self):
        w = positivity_functional([(1, -2), (1, 2), (0, 1)])
        assert all(
            sum(a * b for a, b in zip(w, v)) > 0
            for v in [(1, -2), (1, 2), (0, 1)]
        )

    def test_rejects_lex_negative(self):
        with pytest.raises(ValueError):
            positivity_functional([(1, 0), (-1, 5)])

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            positivity_functional([])


class TestConeSolverExact:
    def test_certificate_is_verified(self, fig1_stencil):
        solver = ConeSolver(fig1_stencil.vectors)
        cert = solver.solve((3, 2))
        assert cert is not None
        total = tuple(
            sum(c * v[k] for v, c in cert.items()) for k in range(2)
        )
        assert total == (3, 2)

    def test_zero_target(self, fig1_stencil):
        cert = ConeSolver(fig1_stencil.vectors).solve((0, 0))
        assert cert == {v: 0 for v in fig1_stencil.vectors}

    def test_infeasible(self, fig1_stencil):
        solver = ConeSolver(fig1_stencil.vectors)
        assert solver.solve((-1, 0)) is None
        assert solver.solve((0, -1)) is None
        assert (1, 1) in solver and (2, -1) not in solver

    def test_min_coeffs(self, fig1_stencil):
        solver = ConeSolver(fig1_stencil.vectors)
        # (1,1) with a positive coefficient on (1,1) itself: exactly one.
        cert = solver.solve((1, 1), min_coeffs={(1, 1): 1})
        assert cert is not None and cert[(1, 1)] >= 1
        # but (1,0) cannot use (1,1) at all
        assert solver.solve((1, 0), min_coeffs={(1, 1): 1}) is None

    def test_min_coeffs_validation(self, fig1_stencil):
        solver = ConeSolver(fig1_stencil.vectors)
        with pytest.raises(ValueError):
            solver.solve((1, 1), min_coeffs={(9, 9): 1})
        with pytest.raises(ValueError):
            solver.solve((1, 1), min_coeffs={(1, 1): -1})

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError):
            ConeSolver([(1, 0)], backend="magic")

    @settings(max_examples=60, deadline=None)
    @given(
        st.lists(lex_positive_vectors(max_abs=2), min_size=1, max_size=3),
        st.tuples(st.integers(0, 8), st.integers(-6, 6)),
    )
    def test_matches_brute_force(self, vectors, target):
        from hypothesis import assume

        vectors = list(dict.fromkeys(vectors))
        # Exhaustive enumeration is complete up to the positivity bound on
        # any certificate coefficient; skip the rare instances where that
        # bound would make the brute force too slow.
        cap = coefficient_bound(target, vectors)
        assume(cap <= 30)
        got = in_integer_cone(target, vectors)
        expected = brute_force_in_cone(vectors=vectors, target=target, cap=max(cap, 0))
        assert (got is None) == (expected is None)

    @settings(max_examples=40, deadline=None)
    @given(
        st.lists(lex_positive_vectors(max_abs=2), min_size=1, max_size=3),
        st.tuples(st.integers(0, 6), st.integers(-5, 5)),
    )
    def test_dfs_and_milp_agree(self, vectors, target):
        vectors = list(dict.fromkeys(vectors))
        dfs = ConeSolver(vectors, backend="dfs").solve(target)
        milp = ConeSolver(vectors, backend="milp").solve(target)
        assert (dfs is None) == (milp is None)


class TestRationalCone:
    def test_integer_gap(self):
        # (1,1) is rationally 0.5*(2,2) but not an integer combination.
        assert in_rational_cone((1, 1), [(2, 2)])
        assert in_integer_cone((1, 1), [(2, 2)]) is None

    def test_zero_always_member(self):
        assert in_rational_cone((0, 0), [])

    def test_nonmember(self):
        assert not in_rational_cone((-1, 0), [(1, 0), (0, 1)])


class TestCoefficientBound:
    def test_negative_weight_target(self, fig1_stencil):
        assert coefficient_bound((-3, 0), fig1_stencil.vectors) == -1

    def test_bound_dominates_certificates(self, fig1_stencil):
        target = (4, 5)
        bound = coefficient_bound(target, fig1_stencil.vectors)
        cert = in_integer_cone(target, fig1_stencil.vectors)
        assert cert is not None
        assert all(c <= bound for c in cert.values())


class TestDoneDeadSets:
    def test_done_contains_q_and_respects_region(self, fig1_stencil):
        region = Polytope.from_box((0, 0), (5, 5))
        done = done_set(fig1_stencil, (3, 3), region)
        assert (3, 3) in done
        assert (0, 0) in done
        assert (3, 4) not in done  # not a backwards-reachable point
        # every DONE point is q minus a non-negative combination
        solver = ConeSolver(fig1_stencil.vectors)
        for p in done:
            assert solver.solve((3 - p[0], 3 - p[1])) is not None

    def test_dead_subset_of_done(self, fig1_stencil):
        region = Polytope.from_box((0, 0), (6, 6))
        q = (5, 5)
        done = done_set(fig1_stencil, q, region)
        dead = dead_set(fig1_stencil, q, region, done=done)
        assert dead <= done

    def test_dead_semantics(self, fig1_stencil):
        # p is dead iff all of p's consumers are in DONE (Figure 2).
        region = Polytope.from_box((0, 0), (6, 6))
        q = (5, 5)
        done = done_set(fig1_stencil, q, region)
        dead = dead_set(fig1_stencil, q, region)
        from repro.util.vectors import add

        for p in dead:
            assert all(
                add(p, v) in done for v in fig1_stencil.vectors
            )
        # (4,4) is dead (its consumers (5,4),(4,5),(5,5) are all DONE)
        assert (4, 4) in dead
        # (4,5)'s consumer (5,6) is not in DONE, hence not dead... but it
        # is outside the region; within the region-restricted semantics it
        # IS dead, matching the conservative documentation.  A clearly
        # live point: (3,5) has consumer (4,5) which is not in DONE.
        assert (3, 5) not in dead

    def test_uov_from_dead_set(self, fig1_stencil):
        # UOV(V) = { q - p : p in DEAD(V, q) }: (1,1) must appear.
        region = Polytope.from_box((0, 0), (8, 8))
        q = (6, 6)
        dead = dead_set(fig1_stencil, q, region)
        assert (5, 5) in dead  # ov = (1,1)


class TestSolverStats:
    def test_memoisation_counts(self, stencil5):
        solver = ConeSolver(stencil5.vectors)
        for target in [(3, 1), (3, -1), (4, 0), (3, 1)]:
            solver.solve(target)
        assert solver.stats["queries"] == 4
        assert solver.stats["dfs_nodes"] > 0
