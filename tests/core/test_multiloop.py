"""Common UOVs across multiple loop nests (Section 7 future work)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.multiloop import (
    common_uov_exists_direction,
    find_common_uov,
    is_common_uov,
)
from repro.core.stencil import Stencil
from repro.core.uov import is_uov
from repro.util.polyhedron import Polytope

from .test_stencil import lex_positive_vectors


class TestMembership:
    def test_known_common(self, stencil5):
        jacobi = Stencil([(1, -1), (1, 0), (1, 1)])
        assert is_common_uov((2, 0), [stencil5, jacobi])
        # (2,0) is the optimum for each individually, so also jointly.

    def test_not_common(self, fig1_stencil, stencil5):
        # (1,1) is fig1's UOV but not the 5-point stencil's.
        assert is_uov((1, 1), fig1_stencil)
        assert not is_uov((1, 1), stencil5)
        assert not is_common_uov((1, 1), [fig1_stencil, stencil5])

    def test_single_stencil_degenerates(self, fig1_stencil):
        assert is_common_uov((1, 1), [fig1_stencil])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            is_common_uov((1, 1), [])
        with pytest.raises(ValueError):
            find_common_uov([])


class TestExistence:
    def test_disjoint_cones_have_no_common_uov(self):
        a = Stencil([(1, 0)])
        b = Stencil([(0, 1)])
        assert not common_uov_exists_direction([a, b])
        assert find_common_uov([a, b]) is None

    def test_overlapping_cones(self, stencil5):
        jacobi = Stencil([(1, -1), (1, 0), (1, 1)])
        assert common_uov_exists_direction([stencil5, jacobi])

    def test_direction_check_is_not_sufficient(self):
        # cones [(1,0),(1,1)] and [(1,1),(1,2)] share exactly the (1,1)
        # ray, so the direction check passes — yet no common UOV exists:
        # any UOV of the first stencil must be (1,0) plus a cone element,
        # which pushes it strictly off the shared ray.
        a = Stencil([(1, 0), (1, 1)])
        b = Stencil([(1, 1), (1, 2)])
        assert common_uov_exists_direction([a, b])
        assert find_common_uov([a, b], max_norm2=64) is None


class TestSearch:
    def test_shortest_common(self, stencil5):
        jacobi = Stencil([(1, -1), (1, 0), (1, 1)])
        result = find_common_uov([stencil5, jacobi])
        assert result is not None
        assert result.ov == (2, 0)
        assert result.optimal

    def test_common_at_least_as_long_as_individual_optima(
        self, fig1_stencil
    ):
        psm = Stencil([(1, 0), (0, 1), (1, 1)])  # same stencil family
        both = find_common_uov([fig1_stencil, psm])
        assert both.ov == (1, 1)

    def test_with_isg_storage_objective(self, fig2_stencil, fig3_isg):
        # A single stencil through the common-UOV path must agree with
        # the dedicated search (Figure 3's answer).
        result = find_common_uov([fig2_stencil], isg=fig3_isg)
        assert result.ov == (3, 1)
        assert result.storage == 16

    def test_dim_mismatch_rejected(self, fig1_stencil):
        with pytest.raises(ValueError):
            find_common_uov(
                [fig1_stencil, Stencil([(1, 0, 0)])]
            )
        with pytest.raises(ValueError):
            find_common_uov(
                [fig1_stencil], isg=Polytope.from_box((0, 0, 0), (1, 1, 1))
            )

    def test_radius_miss_returns_none(self):
        # Cones intersect (both contain (1,0)-ish directions) but every
        # common UOV is longer than the tiny radius allows.
        a = Stencil([(1, -3), (1, 3)])
        b = Stencil([(1, 0)])
        assert find_common_uov([a, b], max_norm2=1) is None

    @settings(max_examples=20, deadline=None)
    @given(
        st.lists(lex_positive_vectors(max_abs=2), min_size=1, max_size=2),
        st.lists(lex_positive_vectors(max_abs=2), min_size=1, max_size=2),
    )
    def test_found_common_is_really_common(self, va, vb):
        a, b = Stencil(va), Stencil(vb)
        result = find_common_uov([a, b], max_norm2=64)
        if result is not None:
            assert is_uov(result.ov, a)
            assert is_uov(result.ov, b)
