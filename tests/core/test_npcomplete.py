"""The PARTITION reduction of Section 3.1."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.cone import ConeSolver
from repro.core.npcomplete import (
    certificate_from_subset,
    cone_query_matches_partition,
    partition_brute_force,
    partition_solvable,
    reduction_from_partition,
)
from repro.core.uov import is_uov


class TestPartitionSolvers:
    def test_known_instances(self):
        assert partition_solvable([1, 1])
        assert partition_solvable([1, 2, 3])
        assert partition_solvable([2, 2, 2, 2])
        assert not partition_solvable([1, 2])
        assert not partition_solvable([7])
        assert not partition_solvable([1, 1, 1])  # odd total

    @given(st.lists(st.integers(1, 12), min_size=1, max_size=8))
    def test_dp_matches_brute_force(self, values):
        witness = partition_brute_force(values)
        assert (witness is not None) == partition_solvable(values)
        if witness is not None:
            assert sum(values[i] for i in witness) * 2 == sum(values)


class TestReduction:
    def test_instance_shape(self):
        stencil, w = reduction_from_partition([3, 5, 2])
        assert len(stencil) <= 6  # r_i / s_i pairs (dedup possible)
        assert w[0] == 10  # sum of values (doubled-coordinate variant)
        # second coordinate: sum of all tags
        n, base = 3, 4
        big = base**n
        assert w[1] == n * big + (big - 1) // n

    def test_rejects_bad_input(self):
        with pytest.raises(ValueError):
            reduction_from_partition([])
        with pytest.raises(ValueError):
            reduction_from_partition([1, 0, 2])
        with pytest.raises(ValueError):
            reduction_from_partition([-3])

    @settings(max_examples=40, deadline=None)
    @given(st.lists(st.integers(1, 9), min_size=1, max_size=5))
    def test_cone_query_equivalence(self, values):
        assert cone_query_matches_partition(values, backend="dfs")

    @settings(max_examples=12, deadline=None)
    @given(st.lists(st.integers(1, 7), min_size=1, max_size=4))
    def test_full_uov_membership_equivalence(self, values):
        stencil, w = reduction_from_partition(values)
        assert is_uov(w, stencil, backend="milp") == partition_solvable(
            values
        )

    def test_witness_builds_cone_certificate(self):
        values = [3, 5, 2, 4]
        witness = partition_brute_force(values)
        assert witness is not None
        cert = certificate_from_subset(values, witness)
        stencil, w = reduction_from_partition(values)
        total = [0, 0]
        for vec, count in cert.items():
            total[0] += count * vec[0]
            total[1] += count * vec[1]
        assert tuple(total) == w
        # and the solver independently finds *a* certificate
        assert ConeSolver(stencil.vectors).solve(w) is not None


class TestHardishInstances:
    def test_larger_instance_still_fast(self):
        rng = random.Random(5)
        values = [rng.randint(1, 30) for _ in range(7)]
        assert cone_query_matches_partition(values, backend="milp")

    def test_unsolvable_instance_by_parity(self):
        # all even except one odd value: total odd -> unsolvable
        values = [2, 4, 6, 3]
        stencil, w = reduction_from_partition(values)
        assert not partition_solvable(values)
        assert ConeSolver(stencil.vectors).solve(w) is None
