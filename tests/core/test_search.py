"""Branch-and-bound UOV search (Section 3.2)."""

from hypothesis import given, settings
from hypothesis import strategies as st

import pytest

from repro.core.search import find_optimal_uov
from repro.core.stencil import Stencil
from repro.core.storage_metric import storage_for_ov
from repro.core.uov import enumerate_uovs, is_uov
from repro.util.polyhedron import Polytope
from repro.util.vectors import norm2

from .test_stencil import lex_positive_vectors


class TestKnownResults:
    def test_fig1_shortest(self, fig1_stencil):
        r = find_optimal_uov(fig1_stencil)
        assert r.ov == (1, 1)
        assert r.optimal
        assert r.objective == 2.0

    def test_stencil5_shortest(self, stencil5):
        r = find_optimal_uov(stencil5)
        assert r.ov == (2, 0)
        assert r.optimal

    def test_fig3_storage_objective(self, fig2_stencil, fig3_isg):
        r = find_optimal_uov(fig2_stencil, isg=fig3_isg)
        assert r.storage == 16
        assert r.ov == (3, 1)
        assert r.optimal

    def test_fig3_shortest_differs_from_storage_optimum(
        self, fig2_stencil, fig3_isg
    ):
        shortest = find_optimal_uov(fig2_stencil)
        assert shortest.ov == (2, 0)
        # The shortest UOV needs more storage on the Figure-3 ISG than
        # the storage-optimal one — the point of Figure 3.
        assert storage_for_ov(shortest.ov, fig3_isg) > 16


class TestResultContract:
    def test_result_is_always_a_uov(self, stencil5):
        r = find_optimal_uov(stencil5, max_nodes=1)
        assert is_uov(r.ov, stencil5)
        assert not r.optimal  # budget exhausted immediately
        assert r.ov == stencil5.initial_uov

    def test_candidates_are_all_uovs(self, fig1_stencil):
        r = find_optimal_uov(fig1_stencil)
        assert all(is_uov(w, fig1_stencil) for w in r.candidates)
        assert r.ov in r.candidates

    def test_str_rendering(self, fig1_stencil):
        text = str(find_optimal_uov(fig1_stencil))
        assert "UOV (1, 1)" in text and "optimal" in text

    def test_objective_validation(self, fig1_stencil):
        with pytest.raises(ValueError):
            find_optimal_uov(fig1_stencil, objective="nonsense")
        with pytest.raises(ValueError):
            find_optimal_uov(fig1_stencil, objective="storage")  # no ISG

    def test_isg_dim_mismatch(self, fig1_stencil):
        with pytest.raises(ValueError):
            find_optimal_uov(
                fig1_stencil, isg=Polytope.from_box((0, 0, 0), (1, 1, 1))
            )

    def test_stats_are_populated(self, stencil5):
        r = find_optimal_uov(stencil5)
        assert r.nodes_visited > 0
        assert r.nodes_pushed >= r.nodes_visited // 2


class TestOptimalityAgainstEnumeration:
    @settings(max_examples=30, deadline=None)
    @given(
        st.lists(lex_positive_vectors(max_abs=2), min_size=1, max_size=3)
    )
    def test_shortest_matches_exhaustive(self, vectors):
        s = Stencil(vectors)
        r = find_optimal_uov(s)
        assert r.optimal
        # exhaustive check within the incumbent's radius: nothing shorter.
        shorter = [
            w
            for w in enumerate_uovs(s, max_norm2=int(r.objective))
            if norm2(w) < r.objective
        ]
        assert shorter == [], f"search missed shorter UOVs {shorter}"
        assert is_uov(r.ov, s)

    @settings(max_examples=15, deadline=None)
    @given(
        st.lists(lex_positive_vectors(max_abs=2), min_size=1, max_size=3),
        st.integers(2, 6),
        st.integers(2, 6),
    )
    def test_storage_objective_never_worse_than_initial(
        self, vectors, n, m
    ):
        s = Stencil(vectors)
        isg = Polytope.from_box((0, 0), (n, m))
        r = find_optimal_uov(s, isg=isg)
        assert r.storage <= storage_for_ov(s.initial_uov, isg)
        assert is_uov(r.ov, s)


class TestThreeDimensional:
    def test_3d_diagonal_stencil(self):
        s = Stencil([(1, 0, 0), (0, 1, 0), (0, 0, 1), (1, 1, 1)])
        r = find_optimal_uov(s)
        assert r.optimal
        assert r.ov == (1, 1, 1)
        assert is_uov(r.ov, s)

    def test_3d_initial_seed(self):
        s = Stencil([(1, 0, 0), (1, 1, 0)])
        r = find_optimal_uov(s)
        assert is_uov(r.ov, s)
        assert r.objective <= norm2(s.initial_uov)
