"""The UOV search is deterministic, run to run and platform to platform.

Determinism rests on two pillars: the search's priorities are
``(measure, point)`` tuples — a total order with no hash dependence —
and the priority queue breaks any remaining tie by insertion order
(asserted inside the queue itself).  These tests pin the observable
consequence: every field of the result, including node counts and the
full candidate tuple, is identical across repeated runs.
"""

from repro.core import Stencil, find_optimal_uov
from repro.util.polyhedron import Polytope


def _snapshot(result):
    return (
        result.ov,
        result.objective,
        result.storage,
        result.optimal,
        result.nodes_visited,
        result.nodes_pushed,
        result.candidates,
        result.nodes_pruned,
        tuple(sorted(result.prunes.items())),
        result.incumbent_history,
    )


def test_shortest_objective_repeats_exactly():
    stencil = Stencil([(1, 0), (0, 1), (1, 1)])
    runs = [_snapshot(find_optimal_uov(stencil)) for _ in range(3)]
    assert runs[0] == runs[1] == runs[2]


def test_storage_objective_repeats_exactly():
    stencil = Stencil([(1, 0), (1, 1), (1, -1)])
    isg = Polytope([(1, 1), (1, 6), (10, 9), (10, 4)])
    runs = [_snapshot(find_optimal_uov(stencil, isg=isg)) for _ in range(3)]
    assert runs[0] == runs[1] == runs[2]


def test_prunes_and_history_are_pinned():
    # Concrete values for the Figure 1 stencil: a changed expansion
    # order, prune rule, or history bookkeeping shows up here first.
    result = find_optimal_uov(Stencil([(1, 0), (0, 1), (1, 1)]))
    assert result.prunes == {
        "phi-bound": 19,
        "length-cap": 0,
        "visited": 1,
    }
    assert result.nodes_pruned == 20
    assert [(u.ov, u.node) for u in result.incumbent_history] == [
        ((2, 2), 0),
        ((1, 1), 4),
    ]
    assert result.incumbent_history[-1].ov == result.ov


def test_budgeted_search_repeats_exactly():
    # Truncated runs expose expansion order directly: a different pop
    # order would change which incumbent the budget cuts off at.
    stencil = Stencil([(1, -2), (1, -1), (1, 0), (1, 1), (1, 2)])
    runs = [
        _snapshot(find_optimal_uov(stencil, max_nodes=3)) for _ in range(3)
    ]
    assert runs[0] == runs[1] == runs[2]
    assert not runs[0][3]  # the budget really did truncate the search
