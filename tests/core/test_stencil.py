"""Stencil invariants and derived quantities."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.stencil import Stencil


def lex_positive_vectors(dim=2, max_abs=3):
    vec = st.tuples(
        *[st.integers(-max_abs, max_abs) for _ in range(dim)]
    )
    return vec.filter(
        lambda v: next((c for c in v if c != 0), 0) > 0
    )


def stencils(dim=2):
    return st.lists(
        lex_positive_vectors(dim), min_size=1, max_size=4
    ).map(Stencil)


class TestValidation:
    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            Stencil([])

    def test_rejects_zero_vector(self):
        with pytest.raises(ValueError):
            Stencil([(0, 0)])

    def test_rejects_lex_negative(self):
        with pytest.raises(ValueError):
            Stencil([(1, 0), (-1, 2)])
        with pytest.raises(ValueError):
            Stencil([(0, -1)])

    def test_rejects_mixed_dims(self):
        with pytest.raises(ValueError):
            Stencil([(1, 0), (1, 0, 0)])

    def test_dedup_and_sort(self):
        s = Stencil([(1, 1), (1, 0), (1, 1)])
        assert s.vectors == ((1, 0), (1, 1))
        assert len(s) == 2

    def test_equality_and_hash(self):
        assert Stencil([(1, 0), (0, 1)]) == Stencil([(0, 1), (1, 0)])
        assert hash(Stencil([(1, 0)])) == hash(Stencil([(1, 0)]))


class TestInitialUov:
    def test_fig1(self, fig1_stencil):
        assert fig1_stencil.initial_uov == (2, 2)

    def test_stencil5(self, stencil5):
        assert stencil5.initial_uov == (5, 0)

    @given(stencils())
    def test_is_sum_of_vectors(self, s):
        total = tuple(sum(v[k] for v in s.vectors) for k in range(s.dim))
        assert s.initial_uov == total


class TestPositivityWeights:
    @given(stencils())
    def test_strictly_positive_on_every_vector(self, s):
        w = s.positivity_weights
        for v in s.vectors:
            assert sum(a * b for a, b in zip(w, v)) > 0

    @given(stencils(dim=3))
    def test_three_dimensional(self, s):
        w = s.positivity_weights
        for v in s.vectors:
            assert sum(a * b for a, b in zip(w, v)) > 0


class TestExtremeVectors:
    def test_interior_vector_dropped(self):
        # (1,0) = ((1,1) + (1,-1)) / 2 is inside the cone.
        s = Stencil([(1, 1), (1, -1), (1, 0)])
        assert set(s.extreme_vectors) == {(1, 1), (1, -1)}

    def test_all_extreme(self, fig1_stencil):
        # (1,1) is NOT a conic combination of (1,0),(0,1)?  It is:
        # (1,1) = (1,0)+(0,1), so only the axis vectors are extreme.
        assert set(fig1_stencil.extreme_vectors) == {(1, 0), (0, 1)}

    def test_stencil5_extremes(self, stencil5):
        assert set(stencil5.extreme_vectors) == {(1, -2), (1, 2)}

    def test_single_vector(self):
        assert Stencil([(2, 1)]).extreme_vectors == ((2, 1),)


class TestTransform:
    def test_skew_keeps_legality(self, stencil5):
        skewed = stencil5.transformed([[1, 0], [2, 1]])
        assert all(all(c >= 0 for c in v) for v in skewed.vectors)

    def test_illegal_transform_rejected(self, fig1_stencil):
        # Reversing the outer loop makes (1,0) lex-negative.
        with pytest.raises(ValueError):
            fig1_stencil.transformed([[-1, 0], [0, 1]])
