"""Storage cost of occupancy vectors over ISGs (Sections 3.2.1, 4.3)."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.stencil import Stencil
from repro.core.storage_metric import (
    min_projection,
    perpendicular_projection,
    search_length_bound,
    storage_for_ov,
)
from repro.util.polyhedron import Polytope


class TestPaperNumbers:
    def test_fig3(self, fig3_isg):
        assert storage_for_ov((3, 0), fig3_isg) == 27
        assert storage_for_ov((3, 1), fig3_isg) == 16

    def test_fig6_formula(self):
        # |mv.xp1 - mv.xp2| + 1 over extreme points (0,m) and (n,0).
        n, m = 9, 13
        isg = Polytope.from_box((0, 0), (n, m))
        assert storage_for_ov((1, 1), isg) == n + m + 1

    def test_stencil5_two_rows(self):
        t, length = 16, 100
        isg = Polytope.from_box((1, 0), (t, length - 1))
        assert storage_for_ov((2, 0), isg) == 2 * length


class TestGcdFactor:
    @given(
        st.integers(1, 4),
        st.tuples(st.integers(1, 5), st.integers(-5, 5)).filter(
            lambda v: math.gcd(v[0], v[1]) == 1
        ),
    )
    def test_scaling_ov_multiplies_classes(self, g, primitive):
        isg = Polytope.from_box((0, 0), (12, 12))
        base = storage_for_ov(primitive, isg)
        scaled = storage_for_ov(
            (g * primitive[0], g * primitive[1]), isg
        )
        assert scaled == g * base

    def test_matches_true_class_count_on_small_isg(self):
        # Count distinct classes by brute force: points modulo ov.
        isg = Polytope.from_box((0, 0), (6, 6))
        for ov in [(1, 1), (2, 0), (2, 2), (1, -2), (3, 1)]:
            classes = set()
            for i in range(7):
                for j in range(7):
                    # canonical representative: subtract k*ov for max k
                    p = (i, j)
                    while True:
                        q = (p[0] - ov[0], p[1] - ov[1])
                        if isg.contains(q):
                            p = q
                        else:
                            break
                    classes.add(p)
            # the mapping may allocate a small superset (dense range),
            # never fewer locations than there are classes
            assert storage_for_ov(ov, isg) >= len(classes)


class TestErrors:
    def test_zero_ov_rejected(self):
        with pytest.raises(ValueError):
            storage_for_ov((0, 0), Polytope.from_box((0, 0), (3, 3)))

    def test_dimension_mismatch(self):
        with pytest.raises(ValueError):
            storage_for_ov((1, 1, 1), Polytope.from_box((0, 0), (3, 3)))


class TestHigherDim:
    def test_3d_prime_ov(self):
        isg = Polytope.from_box((0, 0, 0), (4, 5, 6))
        size = storage_for_ov((1, 1, 1), isg)
        # Two perpendicular coordinates; bounding-box allocation covers
        # all classes (verified by the ND mapping tests); sanity bounds:
        assert size >= 5 * 6  # at least the largest face
        assert size <= 7 * 5 * 6  # no more than the whole box

    def test_3d_gcd(self):
        isg = Polytope.from_box((0, 0, 0), (4, 4, 4))
        assert storage_for_ov((2, 2, 2), isg) == 2 * storage_for_ov(
            (1, 1, 1), isg
        )

    def test_1d(self):
        isg = Polytope.from_box((0,), (99,))
        assert storage_for_ov((3,), isg) == 3
        assert storage_for_ov((1,), isg) == 1


class TestSearchBounds:
    def test_min_projection_rectangle(self):
        isg = Polytope.from_box((0, 0), (20, 5))
        assert math.isclose(min_projection(isg), 5.0)

    def test_perpendicular_projection_2d(self):
        isg = Polytope.from_box((0, 0), (10, 10))
        # perpendicular to (1,0) is the j-axis: width 10
        assert math.isclose(perpendicular_projection((1, 0), isg), 10.0)

    def test_bound_contains_optimum(self, fig2_stencil, fig3_isg):
        from repro.core.search import find_optimal_uov

        bound = search_length_bound(fig2_stencil, fig3_isg)
        best = find_optimal_uov(fig2_stencil, isg=fig3_isg).ov
        assert math.sqrt(best[0] ** 2 + best[1] ** 2) <= bound

    def test_unknown_bounds_is_initial_length(self, fig1_stencil):
        assert math.isclose(
            search_length_bound(fig1_stencil), math.sqrt(8)
        )
