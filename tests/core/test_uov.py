"""UOV membership, certificates, and the semantic ground truth.

The heart of the suite: the algebraic membership test of Section 3.1 is
pitted against dynamic legality over many random legal schedules — a UOV
must survive every one of them.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.stencil import Stencil
from repro.core.uov import (
    enumerate_uovs,
    initial_uov,
    is_legal_for_schedule,
    is_uov,
    uov_certificates,
)
from repro.schedule.random_legal import random_legal_order

from .test_stencil import lex_positive_vectors, stencils


class TestKnownUovs:
    def test_fig1(self, fig1_stencil):
        assert is_uov((1, 1), fig1_stencil)
        assert is_uov((2, 2), fig1_stencil)
        assert is_uov((2, 1), fig1_stencil)
        assert not is_uov((1, 0), fig1_stencil)
        assert not is_uov((0, 1), fig1_stencil)
        assert not is_uov((0, 0), fig1_stencil)

    def test_stencil5(self, stencil5):
        assert is_uov((2, 0), stencil5)
        assert is_uov((5, 0), stencil5)  # the initial UOV
        assert not is_uov((1, 0), stencil5)
        assert not is_uov((1, 1), stencil5)
        assert not is_uov((1, 2), stencil5)

    def test_fig3(self, fig2_stencil):
        assert is_uov((3, 0), fig2_stencil)
        assert is_uov((3, 1), fig2_stencil)
        assert is_uov((2, 0), fig2_stencil)
        assert not is_uov((1, 0), fig2_stencil)

    def test_dimension_mismatch(self, fig1_stencil):
        with pytest.raises(ValueError):
            is_uov((1, 1, 1), fig1_stencil)


class TestInitialUov:
    @given(stencils())
    def test_initial_uov_is_always_a_uov(self, s):
        assert is_uov(initial_uov(s), s)

    @given(stencils(dim=3))
    def test_initial_uov_3d(self, s):
        assert is_uov(initial_uov(s), s)


class TestCertificates:
    def test_rows_reconstruct_ov(self, fig1_stencil):
        ov = (2, 1)
        rows = uov_certificates(ov, fig1_stencil)
        assert rows is not None
        for v, cert in rows.items():
            total = [v[0], v[1]]
            for u, c in cert.items():
                total[0] += c * u[0]
                total[1] += c * u[1]
            assert tuple(total) == ov, f"row {v} does not rebuild {ov}"

    def test_none_for_non_uov(self, fig1_stencil):
        assert uov_certificates((1, 0), fig1_stencil) is None

    def test_positive_diagonal_interpretation(self, fig1_stencil):
        # The paper's system: ov = sum a_ij v_j with a_ii >= 1 per row;
        # our row for v is a certificate for ov - v, i.e. a_ii - 1 >= 0.
        rows = uov_certificates((2, 2), fig1_stencil)
        assert set(rows) == set(fig1_stencil.vectors)


class TestEnumeration:
    def test_fig1_enumeration(self, fig1_stencil):
        found = enumerate_uovs(fig1_stencil, max_norm2=8)
        assert found[0] == (1, 1)  # shortest first
        assert (2, 2) in found
        assert all(is_uov(w, fig1_stencil) for w in found)

    def test_negative_radius_rejected(self, fig1_stencil):
        with pytest.raises(ValueError):
            enumerate_uovs(fig1_stencil, max_norm2=-1)

    def test_no_uov_within_tiny_radius(self, stencil5):
        assert enumerate_uovs(stencil5, max_norm2=1) == []


class TestSemanticGroundTruth:
    """UOV <=> legal under every schedule; checked by sampling."""

    @settings(max_examples=25, deadline=None)
    @given(
        st.lists(lex_positive_vectors(max_abs=2), min_size=1, max_size=3),
        st.integers(0, 10**6),
    )
    def test_uovs_survive_random_schedules(self, vectors, seed):
        s = Stencil(vectors)
        rng = random.Random(seed)
        bounds = [(0, 4), (0, 4)]
        uovs = enumerate_uovs(s, max_norm2=13)
        orders = [
            random_legal_order(s, bounds, rng) for _ in range(4)
        ]
        for w in uovs:
            for order in orders:
                assert is_legal_for_schedule(w, s, order), (
                    f"claimed UOV {w} of {s} violated by a legal schedule"
                )

    def test_non_uov_fails_some_schedule(self, fig1_stencil):
        # (1,0) is not universal: an interchange-like order breaks it.
        rng = random.Random(7)
        bounds = [(0, 5), (0, 5)]
        assert not is_uov((1, 0), fig1_stencil)
        violated = any(
            not is_legal_for_schedule(
                (1, 0),
                fig1_stencil,
                random_legal_order(fig1_stencil, bounds, rng),
            )
            for _ in range(20)
        )
        assert violated

    def test_lex_order_tolerates_schedule_specific_ov(self, stencil5):
        # (1, 2) is NOT universal for the 5-point stencil but IS legal for
        # plain lexicographic execution: the value at (t-1, x-2) has been
        # fully consumed once (t, x) runs left to right.
        points = [
            (t, x) for t in range(1, 7) for x in range(0, 12)
        ]
        assert not is_uov((1, 2), stencil5)
        assert is_legal_for_schedule((1, 2), stencil5, points)
