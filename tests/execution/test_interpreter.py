"""The interpreter against independent numpy oracles.

The oracles below compute each benchmark with plain 2-D numpy arrays and
no storage mapping at all — a fully independent implementation path.  If
the interpreter, the mappings, and the schedules conspire to be wrong in
compatible ways, these tests are the ones that would catch it.
"""

import numpy as np
import pytest

from repro.codes import make_jacobi, make_psm, make_simple2d, make_stencil5
from repro.codes.psm import PSM_GAP
from repro.codes.stencil5 import STENCIL5_WEIGHTS
from repro.execution import execute


def stencil5_oracle(sizes, ctx):
    t_steps, length = sizes["T"], sizes["L"]
    buf = ctx["input"].copy()  # length + 4 with guard cells
    prev = buf.copy()
    cur = np.empty_like(prev)
    for _t in range(t_steps):
        cur[:2] = prev[:2]
        cur[-2:] = prev[-2:]
        for x in range(length):
            window = prev[x : x + 5]
            cur[x + 2] = (
                STENCIL5_WEIGHTS[0] * window[0]
                + STENCIL5_WEIGHTS[1] * window[1]
                + STENCIL5_WEIGHTS[2] * window[2]
                + STENCIL5_WEIGHTS[3] * window[3]
                + STENCIL5_WEIGHTS[4] * window[4]
            )
        prev, cur = cur.copy(), prev
    return prev[2:-2]


def psm_oracle(sizes, ctx):
    n0, n1 = sizes["n0"], sizes["n1"]
    weights, s0, s1 = ctx["weights"], ctx["s0"], ctx["s1"]
    h = np.zeros((n0 + 1, n1 + 1))
    for i in range(1, n0 + 1):
        for j in range(1, n1 + 1):
            h[i, j] = max(
                h[i - 1, j - 1] + weights[s0[i], s1[j]],
                h[i - 1, j] - PSM_GAP,
                h[i, j - 1] - PSM_GAP,
                0.0,
            )
    return h[1:, n1]


def simple2d_oracle(sizes, ctx):
    n, m = sizes["n"], sizes["m"]
    a = np.zeros((n + 1, m + 1))
    a[0, :] = ctx["row0"]
    a[:, 0] = 0.5
    for i in range(1, n + 1):
        for j in range(1, m + 1):
            a[i, j] = 0.3 * a[i - 1, j] + 0.3 * a[i, j - 1] + 0.4 * a[i - 1, j - 1]
    return a[n, 1:]


class TestAgainstOracles:
    @pytest.mark.parametrize(
        "key",
        [
            "natural",
            "ov",
            "ov-tiled",
            "ov-interleaved",
            "storage-optimized",
        ],
    )
    def test_stencil5(self, key):
        sizes = {"T": 7, "L": 23}
        version = make_stencil5()[key]
        result = execute(version, sizes, seed=3)
        expected = stencil5_oracle(sizes, result.ctx)
        assert np.array_equal(result.output_values(), expected)

    @pytest.mark.parametrize(
        "key", ["natural", "ov", "ov-tiled", "ov-optimal", "storage-optimized"]
    )
    def test_psm(self, key):
        sizes = {"n0": 9, "n1": 12}
        version = make_psm()[key]
        result = execute(version, sizes, seed=5)
        expected = psm_oracle(sizes, result.ctx)
        assert np.array_equal(result.output_values(), expected)

    @pytest.mark.parametrize("key", ["natural", "ov", "storage-optimized"])
    def test_simple2d(self, key):
        sizes = {"n": 8, "m": 11}
        version = make_simple2d()[key]
        result = execute(version, sizes, seed=7)
        expected = simple2d_oracle(sizes, result.ctx)
        assert np.array_equal(result.output_values(), expected)


class TestExecutionContract:
    def test_value_outside_domain_rejected(self):
        version = make_jacobi()["ov"]
        result = execute(version, {"T": 3, "L": 8})
        with pytest.raises(ValueError):
            result.value((99, 0))

    def test_check_legality_accepts_good_pairs(self):
        version = make_stencil5()["ov-tiled"]
        execute(version, {"T": 4, "L": 12}, check_legality=True)

    def test_check_legality_rejects_bad_pairs(self):
        """Force the storage-optimized mapping under a tiled schedule."""
        from dataclasses import replace

        from repro.schedule import TiledSchedule, required_skew

        versions = make_stencil5()
        so = versions["storage-optimized"]
        stencil = so.code.stencil
        bad = replace(
            so,
            schedule_factory=lambda s: TiledSchedule(
                (2, 4), skew=required_skew(stencil)
            ),
            tiled=True,
        )
        with pytest.raises(ValueError, match="illegal"):
            execute(bad, {"T": 4, "L": 12}, check_legality=True)

    def test_seed_reproducibility(self):
        version = make_psm()["ov"]
        a = execute(version, {"n0": 6, "n1": 6}, seed=9).output_values()
        b = execute(version, {"n0": 6, "n1": 6}, seed=9).output_values()
        c = execute(version, {"n0": 6, "n1": 6}, seed=10).output_values()
        assert np.array_equal(a, b)
        assert not np.array_equal(a, c)
