"""Multiple assignments: disjoint per-statement storage (Section 3)."""

import numpy as np
import pytest

from repro.execution.multi import execute_multi, plan_storage
from repro.ir import ArrayDecl, ArrayRef, Assignment, LoopNest, Program
from repro.schedule import (
    LexicographicSchedule,
    TiledSchedule,
    WavefrontSchedule,
)


def coupled_program() -> Program:
    """Two coupled recurrences over one nest.

    A's reduced ISG carries {(1,0),(1,1)}; B's carries {(0,1)}; B also
    reads A's same-row value (a cross-array, non-carried edge) and A
    reads B's previous-row value (cross-array, carried (1,0)).
    """
    a_stmt = Assignment(
        target=ArrayRef.of("A", "i", "j"),
        sources=(
            ArrayRef.of("A", "i-1", "j"),
            ArrayRef.of("A", "i-1", "j-1"),
            ArrayRef.of("B", "i-1", "j"),
        ),
        combine=lambda a, b, c: 0.0,
    )
    b_stmt = Assignment(
        target=ArrayRef.of("B", "i", "j"),
        sources=(
            ArrayRef.of("B", "i", "j-1"),
            ArrayRef.of("A", "i", "j"),
        ),
        combine=lambda a, b: 0.0,
    )
    return Program(
        name="coupled",
        loop=LoopNest.of(("i", "j"), [(1, "n"), (1, "m")]),
        body=(a_stmt, b_stmt),
        arrays=(ArrayDecl.of("A", "n+1", "m+1"), ArrayDecl.of("B", "n+1", "m+1")),
        size_symbols=("n", "m"),
    )


def reference(n, m, inputs):
    """Independent numpy oracle with full 2-D arrays."""
    a = np.zeros((n + 1, m + 1))
    b = np.zeros((n + 1, m + 1))
    a[0, :] = inputs["A_row"]
    b[0, :] = inputs["B_row"]
    a[:, 0] = 0.125
    b[:, 0] = 0.25
    for i in range(1, n + 1):
        for j in range(1, m + 1):
            a[i, j] = (
                0.4 * a[i - 1, j] + 0.3 * a[i - 1, j - 1] + 0.3 * b[i - 1, j]
            )
            b[i, j] = 0.5 * b[i, j - 1] + 0.5 * a[i, j]
    return a, b


SIZES = {"n": 9, "m": 12}


def make_runtime(seed=0):
    rng = np.random.default_rng(seed)
    inputs = {
        "A_row": rng.uniform(size=SIZES["m"] + 1),
        "B_row": rng.uniform(size=SIZES["m"] + 1),
    }

    def input_values(array, p):
        i, j = p
        if j <= 0:
            return 0.125 if array == "A" else 0.25
        return float(inputs[f"{array}_row"][j])

    combines = {
        "A": lambda v, q: 0.4 * v[0] + 0.3 * v[1] + 0.3 * v[2],
        "B": lambda v, q: 0.5 * v[0] + 0.5 * v[1],
    }
    return inputs, input_values, combines


class TestPlanning:
    def test_disjoint_stencils_and_uovs(self):
        plan = plan_storage(coupled_program(), SIZES)
        a_plan = plan.plan_for("A")
        b_plan = plan.plan_for("B")
        # A's consumers: its own reads (B's same-iteration read is a
        # zero-distance edge, ordered by body position).
        assert set(a_plan.stencil.vectors) == {(1, 0), (1, 1)}
        # B's consumers include A's read of B[i-1, j]: the (1,0) edge.
        # Without it, B's buffer would recycle values A still needs —
        # the load-bearing subtlety of multi-assignment storage.
        assert set(b_plan.stencil.vectors) == {(0, 1), (1, 0)}
        # Neither (1,0) nor (1,1) is universal for {(1,0),(1,1)}; the
        # optimum is their sum.  For B's {(0,1),(1,0)} it is (1,1).
        assert a_plan.uov == (2, 1)
        assert b_plan.uov == (1, 1)

    def test_union_stencil_includes_cross_array_edges(self):
        plan = plan_storage(coupled_program(), SIZES)
        # A reads B[i-1,j]: cross-array carried distance (1,0).
        assert (1, 0) in plan.union_stencil.vectors

    def test_total_storage_is_sum_of_disjoint_buffers(self):
        plan = plan_storage(coupled_program(), SIZES)
        assert plan.total_storage == sum(
            p.mapping.size for p in plan.statements
        )
        assert plan.plan_for("A").mapping is not plan.plan_for("B").mapping

    def test_statement_without_carried_values_rejected(self):
        stmt = Assignment(
            target=ArrayRef.of("A", "i", "j"),
            sources=(ArrayRef.of("C", "i", "j"),),
            combine=lambda c: c,
        )
        program = Program(
            name="copy2",
            loop=LoopNest.of(("i", "j"), [(1, 3), (1, 3)]),
            body=(stmt,),
            arrays=(ArrayDecl.of("A", 4, 4), ArrayDecl.of("C", 4, 4)),
        )
        with pytest.raises(ValueError):
            plan_storage(program, {})


class TestExecution:
    @pytest.mark.parametrize(
        "schedule",
        [
            LexicographicSchedule(),
            WavefrontSchedule((1, 1)),
            TiledSchedule((3, 4)),
        ],
        ids=lambda s: s.name,
    )
    def test_matches_oracle_under_any_legal_schedule(self, schedule):
        program = coupled_program()
        plan = plan_storage(program, SIZES)
        inputs, input_values, combines = make_runtime()
        buffers = execute_multi(
            plan, SIZES, schedule, input_values, combines
        )
        a_ref, b_ref = reference(SIZES["n"], SIZES["m"], inputs)
        a_map = plan.plan_for("A").mapping.compiled()
        b_map = plan.plan_for("B").mapping.compiled()
        n, m = SIZES["n"], SIZES["m"]
        # last row of A and last column of B survive in their buffers
        for j in range(1, m + 1):
            assert buffers["A"][a_map(n, j)] == a_ref[n, j]
        for i in range(1, n + 1):
            assert buffers["B"][b_map(i, m)] == b_ref[i, m]

    def test_illegal_schedule_rejected(self):
        from repro.schedule import InterchangedSchedule

        program = coupled_program()
        plan = plan_storage(program, SIZES)
        _, input_values, combines = make_runtime()
        # interchange breaks A's cross/own (1,1)-style dependences?  The
        # union stencil contains (1,1); permuted it stays lex-positive —
        # but (1,0) permutes to (0,1), fine too.  Use a genuinely illegal
        # order: reversed wavefront.
        class Reversed(LexicographicSchedule):
            name = "reversed"

            def order(self, bounds):
                return reversed(list(super().order(bounds)))

            def is_legal_for(self, stencil, bounds):
                return False

        with pytest.raises(ValueError, match="violates"):
            execute_multi(
                plan, SIZES, Reversed(), input_values, combines
            )
