"""Address tracing and the trace-driven simulator."""

import pytest

from repro.codes import make_psm, make_stencil5
from repro.execution.simulator import simulate
from repro.execution.trace import (
    ELEMENT_BYTES,
    TraceLayout,
    line_trace,
    trace_length,
)
from repro.machine import PENTIUM_PRO


class TestLayout:
    def test_regions_do_not_overlap(self):
        version = make_psm()["ov"]
        sizes = {"n0": 30, "n1": 30}
        layout = TraceLayout.for_version(version, sizes)
        storage_end = (
            layout.storage_base
            + version.mapping(sizes).size * ELEMENT_BYTES
        )
        assert layout.input_base >= storage_end
        assert layout.table_base > layout.input_base


class TestTrace:
    def test_uncollapsed_length(self):
        version = make_stencil5()["ov"]
        sizes = {"T": 3, "L": 10}
        trace = list(
            line_trace(version, sizes, line_bytes=32, collapse=False)
        )
        assert len(trace) == trace_length(version, sizes)
        # 5 loads + 1 store per iteration, 30 iterations
        assert len(trace) == 6 * 30

    def test_psm_includes_table_reads(self):
        version = make_psm()["natural"]
        sizes = {"n0": 4, "n1": 4}
        assert trace_length(version, sizes) == (3 + 3 + 1) * 16

    def test_collapse_preserves_simulation(self):
        """Collapsing consecutive identical lines is exact for every
        LRU level: same misses, same stalls (only access counts drop)."""
        version = make_stencil5()["ov"]
        sizes = {"T": 4, "L": 32}
        machine = PENTIUM_PRO.scaled(64)

        def run(collapse):
            h = machine.build_hierarchy()
            for line in line_trace(
                version, sizes, machine.l1.line_bytes, collapse=collapse
            ):
                h.access_line(line)
            return h

        full = run(False)
        collapsed = run(True)
        assert full.l1.misses == collapsed.l1.misses
        assert full.l2.misses == collapsed.l2.misses
        assert full.stall_cycles == collapsed.stall_cycles

    def test_trace_is_deterministic(self):
        version = make_psm()["ov"]
        sizes = {"n0": 6, "n1": 6}
        a = list(line_trace(version, sizes, 32, seed=1))
        b = list(line_trace(version, sizes, 32, seed=1))
        assert a == b


class TestSimulator:
    def test_result_fields(self):
        version = make_stencil5()["ov"]
        sizes = {"T": 4, "L": 64}
        r = simulate(version, sizes, PENTIUM_PRO.scaled(64))
        assert r.iterations == 4 * 64
        assert r.cycles_per_iteration == pytest.approx(
            r.compute_cycles + r.stall_cycles_per_iteration
        )
        assert r.storage_elements == 2 * 64
        assert "cyc/iter" in str(r)

    def test_warm_pass_reduces_stalls(self):
        version = make_stencil5()["ov"]
        sizes = {"T": 4, "L": 32}
        cold = simulate(version, sizes, PENTIUM_PRO, passes=1)
        warm = simulate(version, sizes, PENTIUM_PRO, passes=2)
        assert (
            warm.stall_cycles_per_iteration
            < cold.stall_cycles_per_iteration
        )
        # in-cache problem: steady state is virtually stall-free
        assert warm.stall_cycles_per_iteration < 1.0

    def test_tiled_version_charges_overhead(self):
        versions = make_stencil5()
        sizes = {"T": 4, "L": 32}
        flat = simulate(versions["ov"], sizes, PENTIUM_PRO, passes=2)
        tiled = simulate(versions["ov-tiled"], sizes, PENTIUM_PRO, passes=2)
        assert tiled.compute_cycles == pytest.approx(
            flat.compute_cycles + PENTIUM_PRO.cost.tile_overhead_cycles
        )

    def test_invalid_passes(self):
        version = make_stencil5()["ov"]
        with pytest.raises(ValueError):
            simulate(version, {"T": 2, "L": 8}, PENTIUM_PRO, passes=0)

    def test_larger_problem_never_cheaper_memory(self):
        """Cycles/iter grows (weakly) with problem size for the untiled
        streaming versions: the knee structure of Figures 9-11."""
        version = make_stencil5()["ov"]
        machine = PENTIUM_PRO.scaled(64)
        cpis = [
            simulate(version, {"T": 8, "L": length}, machine).cycles_per_iteration
            for length in (64, 512, 4096)
        ]
        assert cpis[0] <= cpis[1] * 1.02 <= cpis[2] * 1.05
