"""The vectorized engine is bit-identical to the scalar interpreter.

Every CodeVersion of every benchmark code, plus wavefront-rescheduled
variants (the schedules under which PSM's stencil *does* batch), must
produce ``np.array_equal`` storage and live-out values through
:func:`execute_vectorized` and :func:`execute`.  Versions whose
(code, schedule) pair exposes no batch structure must degrade to the
scalar interpreter with a :class:`VectorizationFallback` warning — and
still agree, trivially.
"""

import dataclasses
import warnings

import numpy as np
import pytest

from repro.codes import MAKERS
from repro.execution import (
    VectorizationFallback,
    execute,
    execute_vectorized,
)
from repro.schedule import WavefrontSchedule

SIZES = {
    "simple2d": {"n": 13, "m": 11},
    "stencil5": {"T": 9, "L": 14},
    "psm": {"n0": 9, "n1": 12, "tile": 4},
    "jacobi": {"T": 8, "L": 11},
}


@pytest.fixture(autouse=True)
def _fresh_warning_dedup():
    """Fallback warnings deduplicate per process; tests want them fresh."""
    from repro import obs

    obs.reset_dedup()
    yield
    obs.reset_dedup()

ALL_VERSIONS = [
    pytest.param(code_name, key, id=f"{code_name}-{key}")
    for code_name, maker in MAKERS.items()
    for key in maker()
]

#: (code, version, wavefront weights) — legal wavefronts for the code's
#: stencil, including the schedules that batch PSM (lex/interchange do
#: not, because its stencil spans both axes).
WAVEFRONT_CASES = [
    pytest.param("stencil5", "ov", (3, 1), id="stencil5-ov-wf31"),
    pytest.param("stencil5", "natural", (3, 1), id="stencil5-natural-wf31"),
    pytest.param("psm", "ov", (1, 1), id="psm-ov-wf11"),
    pytest.param("psm", "ov-optimal", (2, 1), id="psm-ov-optimal-wf21"),
    pytest.param("jacobi", "ov", (2, 1), id="jacobi-ov-wf21"),
]


def _agree(v, sizes):
    reference = execute(v, sizes, seed=3)
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", VectorizationFallback)
        vectorized = execute_vectorized(v, sizes, seed=3)
    assert np.array_equal(reference.storage, vectorized.storage)
    assert np.array_equal(
        reference.output_values(), vectorized.output_values()
    )


@pytest.mark.parametrize("code_name,key", ALL_VERSIONS)
def test_bit_identical_to_interpreter(code_name, key):
    v = MAKERS[code_name]()[key]
    _agree(v, SIZES[code_name])


@pytest.mark.parametrize("code_name,key,weights", WAVEFRONT_CASES)
def test_bit_identical_under_wavefront(code_name, key, weights):
    base = MAKERS[code_name]()[key]
    v = dataclasses.replace(
        base,
        key=f"{key}-wavefront",
        schedule_factory=lambda sizes: WavefrontSchedule(weights),
    )
    # Wavefront fronts are dependence-free by construction, so these runs
    # must take the batched path — no fallback allowed.
    reference = execute(v, SIZES[code_name], seed=3)
    vectorized = execute_vectorized(v, SIZES[code_name], seed=3, fallback=False)
    assert np.array_equal(reference.storage, vectorized.storage)
    assert np.array_equal(
        reference.output_values(), vectorized.output_values()
    )


def test_stencil5_takes_the_batched_path():
    """The flagship perf case must never silently fall back."""
    for key, v in MAKERS["stencil5"]().items():
        execute_vectorized(v, SIZES["stencil5"], fallback=False)


class TestFallback:
    def test_unbatchable_schedule_warns_and_degrades(self):
        # PSM's stencil spans both axes, so lexicographic order has no
        # dependence-free prefix batches.
        v = MAKERS["psm"]()["natural"]
        with pytest.warns(VectorizationFallback, match="scalar interpreter"):
            result = execute_vectorized(v, SIZES["psm"])
        reference = execute(v, SIZES["psm"])
        assert np.array_equal(result.storage, reference.storage)

    def test_fallback_false_raises(self):
        v = MAKERS["psm"]()["natural"]
        with pytest.raises(ValueError, match="cannot vectorize"):
            execute_vectorized(v, SIZES["psm"], fallback=False)

    def test_fallback_warning_deduplicates_but_counts(self):
        # One Python warning per (code, schedule) pair per process; the
        # metrics counter still sees every occurrence.
        from repro import obs

        v = MAKERS["psm"]()["natural"]
        before = obs.get_metrics().counter("vectorized.fallbacks").value
        with pytest.warns(VectorizationFallback):
            execute_vectorized(v, SIZES["psm"])
        with warnings.catch_warnings():
            warnings.simplefilter("error", VectorizationFallback)
            execute_vectorized(v, SIZES["psm"])  # deduplicated: no raise
        after = obs.get_metrics().counter("vectorized.fallbacks").value
        assert after == before + 2

    def test_code_without_batched_combine_warns(self):
        v = MAKERS["stencil5"]()["ov"]
        stripped = dataclasses.replace(
            v, code=dataclasses.replace(v.code, combine_batch=None)
        )
        with pytest.warns(VectorizationFallback, match="no batched combine"):
            result = execute_vectorized(stripped, SIZES["stencil5"])
        reference = execute(v, SIZES["stencil5"])
        assert np.array_equal(result.storage, reference.storage)


class TestBatchedTrace:
    @pytest.mark.parametrize("code_name,key", ALL_VERSIONS)
    def test_same_line_sequence(self, code_name, key):
        from repro.execution import line_trace

        v = MAKERS[code_name]()[key]
        sizes = SIZES[code_name]
        for collapse in (True, False):
            scalar = list(
                line_trace(v, sizes, 32, collapse=collapse, batched=False)
            )
            auto = list(line_trace(v, sizes, 32, collapse=collapse))
            assert scalar == auto

    def test_batched_true_raises_when_unavailable(self):
        from repro.execution import line_trace

        v = MAKERS["psm"]()["natural"]
        with pytest.raises(ValueError, match="no batched trace path"):
            list(line_trace(v, SIZES["psm"], 32, batched=True))

    def test_stencil5_trace_is_batched(self):
        from repro.execution import line_trace

        v = MAKERS["stencil5"]()["ov"]
        batched = list(line_trace(v, SIZES["stencil5"], 32, batched=True))
        scalar = list(line_trace(v, SIZES["stencil5"], 32, batched=False))
        assert batched == scalar


def test_check_legality_rejects_illegal_pairs():
    # A rolling buffer is schedule-dependent: tiling it is illegal, and
    # the vectorized engine's legality gate must say so just like the
    # scalar one does.
    import dataclasses as dc

    from repro.schedule import TiledSchedule

    v = MAKERS["stencil5"]()["storage-optimized"]
    tiled = dc.replace(
        v,
        key="storage-optimized-tiled",
        schedule_factory=lambda sizes: TiledSchedule((4, 4)),
        tiled=True,
    )
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", VectorizationFallback)
        with pytest.raises(ValueError, match="illegal"):
            execute_vectorized(tiled, SIZES["stencil5"], check_legality=True)
