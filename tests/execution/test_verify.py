"""Cross-version verification must both pass good versions and catch bad."""

from dataclasses import replace

import pytest

from repro.codes import make_simple2d, make_stencil5
from repro.execution.verify import VersionMismatch, verify_versions
from repro.mapping import OVMapping2D
from repro.util.polyhedron import Polytope


class TestVerify:
    def test_all_good_versions_agree(self):
        out = verify_versions(
            make_simple2d().values(), {"n": 6, "m": 7}
        )
        assert out.shape == (7,)

    def test_empty_input_rejected(self):
        with pytest.raises(ValueError):
            verify_versions([], {"n": 2, "m": 2})

    def test_broken_mapping_is_caught(self):
        """Swap in a non-universal OV under a tiled schedule: values get
        clobbered and the verifier must name the offender."""
        versions = make_simple2d()
        good = [versions["natural"], versions["ov"]]

        def bad_mapping(sizes):
            isg = Polytope.from_loop_bounds(
                ((1, sizes["n"]), (1, sizes["m"]))
            )
            return OVMapping2D((1, 0), isg)  # NOT a UOV for this stencil

        bad = replace(
            versions["ov-tiled"],
            key="ov-broken",
            mapping_factory=bad_mapping,
        )
        with pytest.raises(VersionMismatch, match="ov-broken"):
            verify_versions([*good, bad], {"n": 6, "m": 7})

    def test_mismatched_output_shape_caught(self):
        versions = make_stencil5()

        def tiny_outputs(sizes):
            return [(sizes["T"], 0)]

        bad_code = replace(
            versions["ov"].code, output_points=tiny_outputs
        )
        bad = replace(versions["ov"], key="short", code=bad_code)
        with pytest.raises(VersionMismatch, match="short"):
            verify_versions(
                [versions["natural"], bad], {"T": 3, "L": 8}
            )
