"""Every experiment runs in quick mode and its paper-claims hold."""

import pytest

from repro.experiments import ALL_EXPERIMENTS
from repro.experiments.harness import (
    Claim,
    ExperimentResult,
    Series,
    ascii_chart,
    ascii_table,
)

CHEAP = ["overview", "fig1", "fig3", "fig5", "table1", "table2", "npc"]
OVERHEAD = ["fig7", "fig8"]
SCALING = ["fig9_11", "fig12_14"]


@pytest.mark.parametrize("name", CHEAP)
def test_cheap_experiments_pass(name):
    import importlib

    module = importlib.import_module(f"repro.experiments.{name}")
    result = module.run("quick")
    failing = [c for c in result.claims if not c.holds]
    assert not failing, "\n".join(str(c) for c in failing)
    assert result.render()


@pytest.mark.parametrize("name", OVERHEAD)
def test_overhead_experiments_pass(name):
    import importlib

    module = importlib.import_module(f"repro.experiments.{name}")
    result = module.run("quick")
    failing = [c for c in result.claims if not c.holds]
    assert not failing, "\n".join(str(c) for c in failing)


@pytest.mark.parametrize("name", SCALING)
def test_scaling_experiments_pass(name):
    import importlib

    module = importlib.import_module(f"repro.experiments.{name}")
    result = module.run("quick")
    failing = [c for c in result.claims if not c.holds]
    assert not failing, "\n".join(str(c) for c in failing)
    # the rendering includes per-machine tables and a chart
    text = result.render()
    assert "cycles/iteration" in text
    assert "```" in text


def test_registry_is_complete():
    import importlib

    for name in ALL_EXPERIMENTS:
        module = importlib.import_module(f"repro.experiments.{name}")
        assert hasattr(module, "run")
        assert hasattr(module, "TITLE")


class TestHarnessPieces:
    def test_ascii_table(self):
        text = ascii_table([["a", "bb"], ["1", "2"]])
        assert "| a | bb |" in text
        assert ascii_table([]) == ""

    def test_series(self):
        s = Series("x", [1, 2, 3], [10.0, 20.0, 30.0])
        assert s.y_at(2) == 20.0
        assert s.final == 30.0

    def test_chart_renders(self):
        s = [Series("a", [1, 2], [10.0, 100.0]), Series("b", [1, 2], [5.0, 5.0])]
        chart = ascii_chart(s)
        assert "A=a" in chart and "B=b" in chart
        assert ascii_chart([]) == ""

    def test_claim_records_exceptions_as_failures(self):
        result = ExperimentResult("x", "t", "quick")
        result.claim("boom", lambda: 1 / 0)
        assert not result.ok
        assert "error" in result.claims[0].detail

    def test_claim_str(self):
        assert "[PASS] yes" in str(Claim("yes", True))
        assert "[FAIL] no (why)" in str(Claim("no", False, "why"))


class TestTelemetryAppendix:
    @staticmethod
    def _result(name, sims, hits):
        r = ExperimentResult(experiment=name, title=name, mode="quick")
        r.telemetry = {
            "simulated": sims,
            "cache_hits": hits,
            "elapsed_s": 0.5,
        }
        return r

    def test_appendix_reports_per_figure_counts_and_hit_rate(self):
        from repro.experiments.harness import SimulationRunner
        from repro.experiments.report import telemetry_appendix

        results = [self._result("fig7", 12, 0), self._result("fig8", 0, 9)]
        runner = SimulationRunner()
        runner.simulated, runner.cache_hits = 12, 9
        text = telemetry_appendix(
            results, runner=runner, trace_path="/tmp/t.jsonl"
        )
        assert "## Telemetry" in text
        assert "| fig7" in text and "| 0%" in text.replace("  ", " ")
        assert "| fig8" in text and "100%" in text
        assert "cache hit rate" in text
        assert "vectorization fallbacks" in text
        assert "`/tmp/t.jsonl`" in text

    def test_hit_rate_formatting(self):
        from repro.experiments.report import _pct

        assert _pct(0, 0) == "n/a"
        assert _pct(0, 7) == "0%"
        assert _pct(7, 7) == "100%"
        assert _pct(1, 3) == "33.3%"

    def test_write_report_always_appends_the_appendix(self, tmp_path):
        from repro.experiments.report import write_report

        out = tmp_path / "EXPERIMENTS.md"
        write_report(
            [self._result("fig7", 3, 1)], str(out), "quick", elapsed=1.0
        )
        assert "## Telemetry" in out.read_text()
