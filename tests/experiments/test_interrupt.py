"""Interruption handling: SIGINT/SIGTERM leave a resumable run behind."""

import os
import signal

import pytest

from repro import obs
from repro.codes import get_version
from repro.experiments.harness import (
    SimulationRunner,
    interruption_guard,
    load_checkpoint,
)
from repro.machine.configs import PENTIUM_PRO

SIZES = {"T": 6, "L": 24}
MACHINE = PENTIUM_PRO.scaled(64)


@pytest.fixture(autouse=True)
def clean_obs():
    obs.reset()
    yield
    obs.reset()


@pytest.fixture
def version():
    return get_version("stencil5", "ov")


def make_runner(tmp_path, **kwargs):
    return SimulationRunner(
        checkpoint_path=tmp_path / "run.jsonl",
        cache_dir=tmp_path / "cache",
        **kwargs,
    )


class TestSignalFlush:
    def test_sigterm_flushes_checkpoint_ledger_and_exits_143(
        self, tmp_path, version
    ):
        ledger_path = tmp_path / "ledger.jsonl"
        obs.configure_ledger(str(ledger_path))
        runner = make_runner(tmp_path)
        runner.run(version, SIZES, MACHINE)
        assert runner.simulated == 1

        with pytest.raises(SystemExit) as excinfo:
            with interruption_guard(runner):
                os.kill(os.getpid(), signal.SIGTERM)
        assert excinfo.value.code == 128 + signal.SIGTERM

        # The checkpoint carries the completed result *and* the final
        # interrupt stamp; unknown record types stay resume-compatible.
        lines = [
            __import__("json").loads(line)
            for line in (tmp_path / "run.jsonl").read_text().splitlines()
        ]
        interrupts = [r for r in lines if r.get("type") == "interrupt"]
        assert len(interrupts) == 1
        assert interrupts[0]["signal"] == "SIGTERM"
        assert interrupts[0]["simulated"] == 1

        from repro.obs.ledger import read_entries

        entries, corrupt = read_entries(ledger_path)
        assert corrupt == 0
        interrupted = [
            e for e in entries if e.get("event") == "interrupted"
        ]
        assert len(interrupted) == 1
        assert interrupted[0]["signal"] == "SIGTERM"
        assert interrupted[0]["simulated"] == 1
        assert interrupted[0]["quarantined"] == []

    def test_sigint_raises_keyboard_interrupt_after_flushing(
        self, tmp_path, version
    ):
        runner = make_runner(tmp_path)
        with pytest.raises(KeyboardInterrupt):
            with interruption_guard(runner):
                os.kill(os.getpid(), signal.SIGINT)
        counters = obs.get_metrics().snapshot()["counters"]
        assert counters["resilience.interrupts"] == 1
        checkpoint = (tmp_path / "run.jsonl").read_text()
        assert '"type": "interrupt"' in checkpoint or "interrupt" in checkpoint

    def test_interrupted_checkpoint_resumes_with_zero_resimulation(
        self, tmp_path, version
    ):
        runner = make_runner(tmp_path)
        runner.run(version, SIZES, MACHINE)
        with pytest.raises(SystemExit):
            with interruption_guard(runner):
                os.kill(os.getpid(), signal.SIGTERM)

        # The interrupt record does not confuse the loader...
        checkpoint = load_checkpoint(tmp_path / "run.jsonl")
        assert len(checkpoint.results) == 1
        # ...and a resumed runner replays the result without simulating,
        # even with the result cache pointed elsewhere.
        resumed = SimulationRunner(
            checkpoint_path=tmp_path / "run.jsonl",
            cache_dir=tmp_path / "cache2",
            resume=True,
        )
        try:
            resumed.run(version, SIZES, MACHINE)
            assert resumed.simulated == 0
            assert resumed.resumed == 1
        finally:
            resumed.close()


class TestGuardHygiene:
    def test_previous_handlers_are_restored(self, tmp_path):
        before_term = signal.getsignal(signal.SIGTERM)
        before_int = signal.getsignal(signal.SIGINT)
        runner = make_runner(tmp_path)
        try:
            with interruption_guard(runner):
                assert signal.getsignal(signal.SIGTERM) is not before_term
        finally:
            runner.close()
        assert signal.getsignal(signal.SIGTERM) is before_term
        assert signal.getsignal(signal.SIGINT) is before_int

    def test_guard_is_a_noop_off_the_main_thread(self, tmp_path):
        import threading

        runner = make_runner(tmp_path)
        before = signal.getsignal(signal.SIGTERM)
        seen = {}

        def body():
            with interruption_guard(runner):
                seen["handler"] = signal.getsignal(signal.SIGTERM)

        t = threading.Thread(target=body)
        t.start()
        t.join(timeout=30)
        runner.close()
        assert seen["handler"] is before  # nothing was installed
