"""SimulationRunner: caching, fan-out, and key hygiene."""

import json

import pytest

from repro.codes import get_version, get_versions
from repro.execution.simulator import simulate
from repro.experiments.harness import (
    SimTask,
    SimulationRunner,
    engine_fingerprint,
    get_runner,
    set_runner,
)
from repro.experiments.perf import overhead_point, sweep
from repro.machine.configs import PENTIUM_PRO, ULTRA_2

SIZES = {"T": 6, "L": 24}
MACHINE = PENTIUM_PRO.scaled(64)


@pytest.fixture
def version():
    return get_version("stencil5", "ov")


class TestRunner:
    def test_matches_direct_simulation(self, version):
        runner = SimulationRunner()
        result = runner.run(version, SIZES, MACHINE)
        direct = simulate(version, SIZES, MACHINE)
        assert result == direct
        assert runner.simulated == 1 and runner.cache_hits == 0

    def test_warm_cache_runs_zero_simulations(self, version, tmp_path):
        tasks = [
            SimTask.of(version, {"T": 6, "L": length}, MACHINE)
            for length in (16, 24, 32)
        ]
        cold = SimulationRunner(cache_dir=tmp_path)
        first = cold.run_tasks(tasks)
        assert cold.simulated == 3 and cold.cache_hits == 0

        warm = SimulationRunner(cache_dir=tmp_path)
        second = warm.run_tasks(tasks)
        assert warm.simulated == 0 and warm.cache_hits == 3
        assert second == first

    def test_cached_result_round_trips_exactly(self, version, tmp_path):
        runner = SimulationRunner(cache_dir=tmp_path)
        first = runner.run(version, SIZES, MACHINE, passes=2)
        again = SimulationRunner(cache_dir=tmp_path).run(
            version, SIZES, MACHINE, passes=2
        )
        assert again == first  # dataclass equality: every field, stats too

    def test_corrupt_cache_entry_is_a_miss(self, version, tmp_path):
        runner = SimulationRunner(cache_dir=tmp_path)
        runner.run(version, SIZES, MACHINE)
        (cache_file,) = tmp_path.glob("*.json")
        cache_file.write_text("{not json")
        rerun = SimulationRunner(cache_dir=tmp_path)
        rerun.run(version, SIZES, MACHINE)
        assert rerun.simulated == 1
        assert json.loads(cache_file.read_text())  # rewritten clean

    def test_process_pool_matches_in_process(self, version):
        tasks = [
            SimTask.of(version, {"T": 6, "L": length}, machine)
            for length in (16, 24)
            for machine in (MACHINE, ULTRA_2.scaled(64))
        ]
        serial = SimulationRunner(jobs=1).run_tasks(tasks)
        parallel = SimulationRunner(jobs=2).run_tasks(tasks)
        assert parallel == serial


class TestTelemetry:
    def test_counts_hits_misses_and_wall_time(self, version, tmp_path):
        runner = SimulationRunner(cache_dir=tmp_path)
        task = SimTask.of(version, SIZES, MACHINE)
        runner.run_tasks([task])
        runner.run_tasks([task])  # second batch hits the cache
        t = runner.telemetry()
        assert t["simulated"] == 1 and t["cache_hits"] == 1
        assert t["tasks"] == 2 and t["hit_rate"] == 0.5
        assert t["sim_wall_s"] > 0
        assert t["workers"]  # the in-process "worker" counts
        (slowest,) = t["slowest"]
        assert slowest["task"] == task.label
        assert slowest["wall_s"] == pytest.approx(t["sim_wall_s"])

    def test_empty_runner_telemetry(self):
        t = SimulationRunner().telemetry()
        assert t["tasks"] == 0 and t["hit_rate"] is None
        assert t["slowest"] == []

    def test_slowest_keeps_a_bounded_top_k(self, version, tmp_path):
        runner = SimulationRunner(cache_dir=tmp_path)
        tasks = [
            SimTask.of(version, {"T": 6, "L": length}, MACHINE)
            for length in range(8, 8 + 4 * (runner.SLOWEST_KEPT + 2), 4)
        ]
        runner.run_tasks(tasks)
        t = runner.telemetry()
        assert len(t["slowest"]) == runner.SLOWEST_KEPT
        walls = [entry["wall_s"] for entry in t["slowest"]]
        assert walls == sorted(walls, reverse=True)

    def test_task_label_is_human_readable(self, version):
        task = SimTask.of(version, SIZES, MACHINE)
        assert task.label == f"stencil5/ov L=24,T=6 @{MACHINE.name}"

    def test_machine_stats_reach_the_metrics_registry(self, version):
        from repro import obs

        obs.reset_metrics()
        try:
            SimulationRunner().run(version, SIZES, MACHINE)
            counters = obs.get_metrics().snapshot()["counters"]
            assert counters["simulate.runs"] == 1
            assert counters["machine.accesses"] > 0
            assert counters["sim.cache.misses"] == 1
        finally:
            obs.reset_metrics()


class TestTaskKey:
    def test_key_ignores_sizes_insertion_order(self, version):
        runner = SimulationRunner()
        a = SimTask.of(version, {"T": 6, "L": 24}, MACHINE)
        b = SimTask.of(version, {"L": 24, "T": 6}, MACHINE)
        assert runner.task_key(a) == runner.task_key(b)

    def test_key_separates_everything_else(self, version):
        runner = SimulationRunner()
        base = SimTask.of(version, SIZES, MACHINE)
        variants = [
            SimTask.of(version, {"T": 6, "L": 32}, MACHINE),
            SimTask.of(version, SIZES, ULTRA_2.scaled(64)),
            SimTask.of(version, SIZES, MACHINE.scaled(2)),
            SimTask.of(version, SIZES, MACHINE, passes=2),
            SimTask.of(version, SIZES, MACHINE, seed=1),
            SimTask.of(
                get_version("stencil5", "natural"), SIZES, MACHINE
            ),
        ]
        keys = {runner.task_key(t) for t in variants}
        assert runner.task_key(base) not in keys
        assert len(keys) == len(variants)

    def test_engine_fingerprint_is_stable(self):
        assert engine_fingerprint() == engine_fingerprint()
        assert len(engine_fingerprint()) == 16


class TestPerfDrivers:
    def test_sweep_uses_the_cache(self, tmp_path):
        versions = list(get_versions("stencil5").values())[:2]
        sizes_list = [{"T": 6, "L": 16}, {"T": 6, "L": 24}]
        lines = []
        cold = SimulationRunner(cache_dir=tmp_path)
        g1 = sweep(
            versions,
            sizes_list,
            [MACHINE],
            lambda s: s["L"],
            progress=lines.append,
            runner=cold,
        )
        assert cold.simulated == 4
        assert len(lines) == 4  # progress still fires per point
        warm = SimulationRunner(cache_dir=tmp_path)
        g2 = sweep(
            versions, sizes_list, [MACHINE], lambda s: s["L"], runner=warm
        )
        assert warm.simulated == 0 and warm.cache_hits == 4
        for s1, s2 in zip(g1[MACHINE.name], g2[MACHINE.name]):
            assert s1.xs == s2.xs and s1.ys == s2.ys

    def test_overhead_point_shape(self):
        versions = list(get_versions("stencil5").values())[:2]
        out = overhead_point(versions, SIZES, [MACHINE])
        assert set(out) == {MACHINE.name}
        assert set(out[MACHINE.name]) == {v.key for v in versions}

    def test_default_runner_is_swappable(self):
        original = get_runner()
        try:
            runner = SimulationRunner()
            assert set_runner(runner) is original
            assert get_runner() is runner
        finally:
            set_runner(original)


class TestWorkerObservability:
    """Worker-process metrics must reach the parent registry (merged,
    not double-counted) — previously only the machine.* slice survived
    the pipe."""

    def test_worker_counters_merge_into_parent(self, version):
        from repro import obs

        obs.reset_metrics()
        try:
            tasks = [
                SimTask.of(version, {"T": 6, "L": length}, MACHINE)
                for length in (16, 24, 32)
            ]
            SimulationRunner(jobs=2).run_tasks(tasks)
            counters = obs.get_metrics().snapshot()["counters"]
            # One worker process per task; each worker's full registry
            # merges back: exactly 3 runs, no double count.
            assert counters["simulate.runs"] == 3
            assert counters["machine.accesses"] > 0
            assert counters["simulate.iterations"] > 0  # non-machine.* too
        finally:
            obs.reset_metrics()

    def test_worker_and_inprocess_counters_agree(self, version):
        from repro import obs

        tasks = [
            SimTask.of(version, {"T": 6, "L": length}, MACHINE)
            for length in (16, 24)
        ]
        obs.reset_metrics()
        SimulationRunner(jobs=1).run_tasks(tasks)
        serial = obs.get_metrics().snapshot()["counters"]
        obs.reset_metrics()
        SimulationRunner(jobs=2).run_tasks(tasks)
        parallel = obs.get_metrics().snapshot()["counters"]
        obs.reset_metrics()
        assert parallel["machine.accesses"] == serial["machine.accesses"]
        assert parallel["simulate.runs"] == serial["simulate.runs"]

    def test_worker_dedup_keys_merge(self, version):
        from repro import obs

        obs.reset()
        try:
            # Merging a worker's seen-keys means the parent will not
            # re-emit a warning the worker already issued.
            obs.merge_dedup([("native-fallback", "stencil5", "no-toolchain")])
            assert (
                "native-fallback",
                "stencil5",
                "no-toolchain",
            ) in obs.seen_keys()
        finally:
            obs.reset()
