"""Differential test: generated Python vs the interpreter, bit for bit.

For every spec-synthesized code (the registered four plus the shipped
``examples/specs/*.json``), the ``codegen/python_gen.py`` source must
execute bit-identically to the interpreter — the canary for drift
between the frontend's synthesized semantics and the code generator.
"""

from pathlib import Path

import numpy as np
import pytest

from repro.codegen import build_runner, generate_python
from repro.codes import get_spec
from repro.execution import execute
from repro.frontend import StencilSpec, make_versions, synthesize_code

EXAMPLES = sorted(
    (Path(__file__).resolve().parents[2] / "examples" / "specs").glob("*.json")
)

SIZES = {
    "simple2d": {"n": 6, "m": 8},
    "stencil5": {"T": 5, "L": 16},
    "psm": {"n0": 7, "n1": 9},
    "jacobi": {"T": 4, "L": 12},
}


def assert_generated_matches_interpreter(version, sizes):
    source = generate_python(version, sizes)
    run = build_runner(source)
    code = version.code
    ctx = code.make_context(sizes, 0)
    storage = np.zeros(version.mapping(sizes).size)
    run(storage, ctx, code.combine, code.input_value)
    reference = execute(version, sizes)
    assert np.array_equal(storage, reference.storage), source


def family_cases():
    cases = []
    for name, sizes in SIZES.items():
        code = synthesize_code(get_spec(name))
        for key, version in make_versions(code).items():
            cases.append(pytest.param(version, sizes, id=f"{name}-{key}"))
    for path in EXAMPLES:
        spec = StencilSpec.load(path)
        code = synthesize_code(spec)
        for key, version in make_versions(code).items():
            cases.append(
                pytest.param(version, dict(spec.sizes), id=f"{spec.name}-{key}")
            )
    return cases


class TestSpecCodegenDifferential:
    @pytest.mark.parametrize("version,sizes", family_cases())
    def test_generated_source_matches_interpreter(self, version, sizes):
        try:
            source_ok = generate_python(version, sizes)
        except (NotImplementedError, ValueError) as exc:
            pytest.skip(f"codegen does not support this version: {exc}")
        del source_ok
        assert_generated_matches_interpreter(version, sizes)

    def test_example_specs_exist(self):
        assert len(EXAMPLES) >= 2
