"""StencilSpec validation, round-tripping, and the builder API."""

import dataclasses

import pytest

from repro.analysis.diag import Diagnostics, Severity
from repro.codes import CODES, get_spec
from repro.frontend import (
    SpecBuilder,
    SpecError,
    StencilSpec,
    code_to_spec,
    synthesize_code,
    validate_spec,
)

CODE_NAMES = ["simple2d", "stencil5", "psm", "jacobi"]


def minimal_doc(**overrides):
    """A valid 2-D Jacobi-shaped spec document to perturb."""
    doc = {
        "name": "probe",
        "indices": ["t", "x"],
        "bounds": [[1, "T"], [0, "L - 1"]],
        "distances": [[1, 1], [1, 0], [1, -1]],
        "combine": {"kind": "weighted-sum", "weights": [0.25, 0.5, 0.25]},
        "inputs": {"kind": "padded-line", "axis": 1, "pad": 1, "pad_value": 0.0},
        "sizes": {"T": 4, "L": 8},
    }
    doc.update(overrides)
    return doc


def findings_for(doc):
    """Validate an invalid doc; return its findings (asserts SpecError)."""
    diag = Diagnostics()
    with pytest.raises(SpecError) as exc_info:
        validate_spec(doc, diag)
    assert exc_info.value.diagnostics is diag
    return diag.findings


def codes_of(findings):
    return {f.code for f in findings}


class TestRoundTrip:
    @pytest.mark.parametrize("name", CODE_NAMES)
    def test_registered_spec_survives_json_round_trip(self, name):
        spec = get_spec(name)
        assert validate_spec(spec.to_json()) == spec

    @pytest.mark.parametrize("name", CODE_NAMES)
    def test_spec_to_code_to_spec_is_stable(self, name):
        spec = get_spec(name)
        code = synthesize_code(spec)
        recovered = code_to_spec(code)
        assert recovered == spec
        # And the recovered spec re-synthesizes and re-serialises stably.
        assert code_to_spec(synthesize_code(recovered)) == spec
        assert validate_spec(recovered.to_json()).to_json() == spec.to_json()

    def test_minimal_doc_round_trips(self):
        spec = validate_spec(minimal_doc())
        assert validate_spec(spec.to_json()) == spec

    def test_bounds_are_canonicalised_idempotently(self):
        spec = validate_spec(minimal_doc(bounds=[[1, "T"], [0, "L-1"]]))
        assert spec.bounds == ((1, "T"), (0, "L - 1"))
        assert validate_spec(spec.to_json()).bounds == spec.bounds

    def test_hand_written_code_has_no_spec(self):
        from repro.codes.base import Code

        code = synthesize_code(get_spec("jacobi"))
        bare = dataclasses.replace(code, spec=None)
        with pytest.raises(ValueError, match="hand-written"):
            code_to_spec(bare)


class TestValidation:
    def test_bad_distance_arity(self):
        findings = findings_for(
            minimal_doc(distances=[[1, 1], [1, 0, 0], [1, -1]])
        )
        assert "SPEC002" in codes_of(findings)
        assert any("3 components for 2" in f.message for f in findings)

    def test_non_lex_positive_distance(self):
        findings = findings_for(minimal_doc(distances=[[1, 1], [0, -1]]))
        assert "SPEC002" in codes_of(findings)
        assert any("lexicographically" in f.message for f in findings)

    def test_unbound_size_symbol(self):
        findings = findings_for(minimal_doc(sizes={"T": 4}))
        assert "SPEC004" in codes_of(findings)
        bad = next(f for f in findings if f.code == "SPEC004")
        assert bad.data["symbol"] == "L"
        assert "sizes" in (bad.fix_hint or "")

    def test_non_affine_bound(self):
        findings = findings_for(minimal_doc(bounds=[[1, "T"], [0, "L*L"]]))
        assert "SPEC003" in codes_of(findings)

    def test_bound_referencing_loop_index(self):
        findings = findings_for(minimal_doc(bounds=[[1, "T"], [0, "t + 3"]]))
        assert "SPEC003" in codes_of(findings)
        assert any("rectangular" in f.message for f in findings)

    def test_bad_combine_weight_arity(self):
        findings = findings_for(
            minimal_doc(combine={"kind": "weighted-sum", "weights": [0.5, 0.5]})
        )
        assert "SPEC005" in codes_of(findings)

    def test_unknown_combine_hook(self):
        findings = findings_for(
            minimal_doc(combine={"kind": "hook", "name": "nope"})
        )
        assert "SPEC005" in codes_of(findings)

    def test_bad_input_rule(self):
        findings = findings_for(minimal_doc(inputs={"kind": "telepathy"}))
        assert "SPEC006" in codes_of(findings)

    def test_unknown_mapping_suggests_close_match(self):
        findings = findings_for(minimal_doc(mapping="ov-interleave"))
        bad = next(f for f in findings if f.code == "SPEC007")
        assert "ov-interleaved" in (bad.fix_hint or "")

    def test_unknown_schedule(self):
        findings = findings_for(minimal_doc(schedule="wavefront2"))
        assert "SPEC007" in codes_of(findings)

    def test_empty_loop_under_default_sizes(self):
        findings = findings_for(minimal_doc(sizes={"T": 4, "L": 0}))
        assert "SPEC008" in codes_of(findings)

    def test_multiple_errors_collected_in_one_pass(self):
        findings = findings_for(
            minimal_doc(
                distances=[[1, 1, 1]],
                bounds=[[1, "T"], [0, "L*L"]],
                mapping="telepathy",
            )
        )
        assert {"SPEC002", "SPEC003", "SPEC007"} <= codes_of(findings)

    def test_unknown_field_is_a_warning_not_an_error(self):
        diag = Diagnostics()
        spec = validate_spec(minimal_doc(extra_field=1), diag)
        assert isinstance(spec, StencilSpec)
        assert diag.max_severity() == Severity.WARNING

    def test_non_mapping_spec(self):
        findings = findings_for(["not", "a", "spec"])
        assert "SPEC001" in codes_of(findings)


class TestBuilder:
    def test_builder_matches_from_json(self):
        built = (
            SpecBuilder("probe")
            .loop("t", 1, "T")
            .loop("x", 0, "L - 1")
            .distances((1, 1), (1, 0), (1, -1))
            .weighted_sum(0.25, 0.5, 0.25)
            .inputs("padded-line", axis=1, pad=1, pad_value=0.0)
            .sizes(T=4, L=8)
            .build()
        )
        assert built == validate_spec(minimal_doc())

    def test_builder_expr_combine_with_max(self):
        spec = (
            SpecBuilder("clamped")
            .loop("i", 1, "n")
            .loop("j", 1, "m")
            .distances((1, 0), (0, 1), (1, 1))
            .expr("max(0.3*v0 + 0.3*v1 + 0.4*v2, 0.1)")
            .inputs("row-or-constant", axis=1, constant=0.5)
            .sizes(n=4, m=5)
            .build()
        )
        code = synthesize_code(spec)
        assert code.combine((1.0, 1.0, 1.0), (1, 1), {}) == 1.0
        assert code.combine((0.0, 0.0, 0.0), (1, 1), {}) == 0.1

    def test_builder_surfaces_validation_errors(self):
        builder = (
            SpecBuilder("broken")
            .loop("t", 1, "T")
            .distances((1, 2))  # arity mismatch with 1 loop
            .weighted_sum(1.0)
            .inputs("padded-line")
            .sizes(T=4)
        )
        with pytest.raises(SpecError):
            builder.build()


class TestSynthesizedEquivalence:
    """Spec-synthesized codes behave exactly like the originals."""

    @pytest.mark.parametrize("name", CODE_NAMES)
    def test_stencil_matches_program_extraction(self, name):
        from repro.analysis.dependence import extract_stencil

        code = synthesize_code(get_spec(name))
        assert extract_stencil(code.program).vectors == code.stencil.vectors

    @pytest.mark.parametrize("name", CODE_NAMES)
    def test_all_versions_verify(self, name):
        from repro.codes import get_versions
        from repro.execution import verify_versions

        spec = get_spec(name)
        versions = get_versions(name)
        verify_versions(list(versions.values()), spec.sizes, seed=1)

    def test_registry_metadata_carries_specs(self):
        for entry in CODES.entries():
            assert entry.meta["spec"].name == entry.name
