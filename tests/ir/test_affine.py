"""Affine expressions: parsing, algebra, evaluation."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.ir.affine import AffineExpr


class TestParsing:
    def test_simple_forms(self):
        assert AffineExpr.parse("i").evaluate({"i": 3}) == 3
        assert AffineExpr.parse("i-1").evaluate({"i": 3}) == 2
        assert AffineExpr.parse("n-i+j").evaluate(
            {"n": 10, "i": 4, "j": 1}
        ) == 7
        assert AffineExpr.parse("2*t + 3").evaluate({"t": 5}) == 13
        assert AffineExpr.parse("t*2").evaluate({"t": 5}) == 10
        assert AffineExpr.parse(7).evaluate({}) == 7
        assert AffineExpr.parse("-i").evaluate({"i": 2}) == -2

    def test_idempotent_on_affine(self):
        e = AffineExpr.parse("n - i")
        assert AffineExpr.parse(e) is e

    def test_rejects_nonlinear(self):
        with pytest.raises(ValueError):
            AffineExpr.parse("i*j")
        with pytest.raises(ValueError):
            AffineExpr.parse("")
        with pytest.raises(ValueError):
            AffineExpr.parse("i-")
        with pytest.raises(ValueError):
            AffineExpr.parse("i + 2*")

    def test_repeated_variable_collapses(self):
        e = AffineExpr.parse("i + i + 1")
        assert e.coefficient("i") == 2
        assert e.const == 1


class TestAlgebra:
    def test_add_sub(self):
        a = AffineExpr.parse("i + 1")
        b = AffineExpr.parse("j - 1")
        assert (a + b).evaluate({"i": 2, "j": 5}) == 7
        assert (a - b).evaluate({"i": 2, "j": 5}) == -1

    def test_scalar_multiply(self):
        e = AffineExpr.parse("2*i - 3") * 4
        assert e.coefficient("i") == 8 and e.const == -12
        with pytest.raises(TypeError):
            AffineExpr.parse("i") * 1.5

    def test_zero_coefficients_vanish(self):
        e = AffineExpr.parse("i") - AffineExpr.parse("i")
        assert e.is_constant() and e.const == 0
        assert e.variables == ()

    @given(
        st.integers(-9, 9),
        st.integers(-9, 9),
        st.integers(-9, 9),
        st.integers(-9, 9),
    )
    def test_evaluation_is_linear(self, a, b, i, j):
        e = AffineExpr.var("i", a) + AffineExpr.var("j", b)
        assert e.evaluate({"i": i, "j": j}) == a * i + b * j


class TestSubstitution:
    def test_partial_binding(self):
        e = AffineExpr.parse("n - i + j")
        bound = e.substitute({"n": 100})
        assert bound.variables == ("i", "j")
        assert bound.evaluate({"i": 40, "j": 2}) == 62

    def test_full_binding_becomes_constant(self):
        e = AffineExpr.parse("2*i + 1").substitute({"i": 3})
        assert e.is_constant() and e.const == 7


class TestPrinting:
    def test_round_trip_through_str(self):
        for text in ["i - 1", "n - i + j", "2*i + 3", "-i + 4"]:
            e = AffineExpr.parse(text)
            again = AffineExpr.parse(str(e).replace(" ", ""))
            assert again == e, (text, str(e))

    def test_constant_zero(self):
        assert str(AffineExpr.constant(0)) == "0"
