"""Array refs, loop nests, and programs."""

import pytest

from repro.ir import ArrayDecl, ArrayRef, Assignment, LoopNest, Program


class TestArrayRef:
    def test_uniform_detection(self):
        ref = ArrayRef.of("A", "i-1", "j")
        assert ref.is_uniform_in(("i", "j"))
        assert ref.offset_from(("i", "j")) == (-1, 0)

    def test_non_uniform_cases(self):
        assert not ArrayRef.of("A", "j", "i").is_uniform_in(("i", "j"))
        assert not ArrayRef.of("A", "2*i", "j").is_uniform_in(("i", "j"))
        assert not ArrayRef.of("A", "n-i", "j").is_uniform_in(("i", "j"))
        assert not ArrayRef.of("A", "i").is_uniform_in(("i", "j"))

    def test_offset_from_rejects_non_uniform(self):
        with pytest.raises(ValueError):
            ArrayRef.of("A", "j", "i").offset_from(("i", "j"))

    def test_index_evaluation(self):
        ref = ArrayRef.of("W", "i+2", "j-3")
        assert ref.index({"i": 5, "j": 10}) == (7, 7)

    def test_str(self):
        assert str(ArrayRef.of("A", "i-1", "j")) == "A[i - 1, j]"


class TestLoopNest:
    def test_points_lexicographic(self):
        nest = LoopNest.of(("i", "j"), [(0, 1), (0, "m")])
        pts = list(nest.points({"m": 1}))
        assert pts == [(0, 0), (0, 1), (1, 0), (1, 1)]
        assert nest.iteration_count({"m": 1}) == 4

    def test_symbolic_bounds(self):
        nest = LoopNest.of(("t", "x"), [(1, "T"), (0, "L-1")])
        assert nest.concrete_bounds({"T": 3, "L": 10}) == ((1, 3), (0, 9))

    def test_empty_range_rejected(self):
        nest = LoopNest.of(("i",), [(5, "n")])
        with pytest.raises(ValueError):
            nest.concrete_bounds({"n": 3})

    def test_triangular_nest_rejected(self):
        with pytest.raises(ValueError):
            LoopNest.of(("i", "j"), [(0, 5), (0, "i")])

    def test_duplicate_indices_rejected(self):
        with pytest.raises(ValueError):
            LoopNest.of(("i", "i"), [(0, 5), (0, 5)])

    def test_env(self):
        nest = LoopNest.of(("i", "j"), [(0, 3), (0, 3)])
        assert nest.env((1, 2)) == {"i": 1, "j": 2}
        with pytest.raises(ValueError):
            nest.env((1, 2, 3))

    def test_domain_polytope(self):
        nest = LoopNest.of(("i", "j"), [(1, 4), (2, "m")])
        domain = nest.domain({"m": 5})
        assert domain.bounding_box() == ((1, 2), (4, 5))


class TestAssignment:
    def _stmt(self):
        return Assignment(
            target=ArrayRef.of("A", "i", "j"),
            sources=(
                ArrayRef.of("A", "i-1", "j"),
                ArrayRef.of("B", "i", "j"),
            ),
            combine=lambda a, b: a + b,
        )

    def test_reads_and_writes(self):
        stmt = self._stmt()
        assert stmt.array_written == "A"
        assert stmt.arrays_read == ("A", "B")
        assert len(stmt.self_sources()) == 1

    def test_str(self):
        assert "A[i, j] = f(" in str(self._stmt())


class TestProgram:
    def test_undeclared_array_rejected(self):
        stmt = Assignment(
            target=ArrayRef.of("A", "i"),
            sources=(ArrayRef.of("B", "i"),),
            combine=lambda b: b,
        )
        with pytest.raises(ValueError):
            Program(
                name="bad",
                loop=LoopNest.of(("i",), [(0, 5)]),
                body=(stmt,),
                arrays=(ArrayDecl.of("A", 6),),
            )

    def test_duplicate_decl_rejected(self):
        stmt = Assignment(
            target=ArrayRef.of("A", "i"),
            sources=(),
            combine=lambda: 0.0,
        )
        with pytest.raises(ValueError):
            Program(
                name="bad",
                loop=LoopNest.of(("i",), [(0, 5)]),
                body=(stmt,),
                arrays=(ArrayDecl.of("A", 6), ArrayDecl.of("A", 6)),
            )

    def test_single_statement_accessor(self):
        from repro.codes import make_stencil5

        code = next(iter(make_stencil5().values())).code
        assert code.program.single_statement.array_written == "A"

    def test_check_sizes(self):
        from repro.codes import make_psm

        program = next(iter(make_psm().values())).code.program
        with pytest.raises(ValueError):
            program.check_sizes({"n0": 5})
        program.check_sizes({"n0": 5, "n1": 6})

    def test_array_lookup(self):
        from repro.codes import make_stencil5

        program = next(iter(make_stencil5().values())).code.program
        assert program.array("A").name == "A"
        with pytest.raises(KeyError):
            program.array("Z")

    def test_concrete_shape(self):
        decl = ArrayDecl.of("A", "T+1", "L", live_out=True)
        assert decl.concrete_shape({"T": 7, "L": 10}) == (8, 10)
        assert decl.rank == 2 and decl.live_out
