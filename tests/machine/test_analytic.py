"""Analytic streaming model vs the trace-driven simulator.

Where a closed form exists (untiled streaming versions), the simulator
must land near it; large disagreement in either direction would mean one
of the two is wrong.
"""

import pytest

from repro.codes import make_stencil5
from repro.execution import simulate
from repro.machine import PENTIUM_PRO
from repro.machine.analytic import (
    Stream,
    predict_streaming_stalls,
    stencil5_streams,
)


class TestModelBasics:
    def test_in_cache_predicts_zero(self):
        machine = PENTIUM_PRO
        streams = [Stream("buf", 1024, reuse_bytes=1024)]  # inside L1
        assert (
            predict_streaming_stalls(streams, machine, 128, 8) == 0.0
        )

    def test_out_of_l1_charges_l2(self):
        machine = PENTIUM_PRO
        streams = [Stream("buf", 64 * 1024, reuse_bytes=64 * 1024)]
        per_iter = predict_streaming_stalls(streams, machine, 8192, 4)
        expected = (64 * 1024 / 32) * machine.l2_stall / 8192
        assert per_iter == pytest.approx(expected, rel=0.3)

    def test_compulsory_charges_memory(self):
        machine = PENTIUM_PRO
        streams = [Stream("fresh", 32 * 1024, reuse_bytes=None)]
        per_iter = predict_streaming_stalls(streams, machine, 4096, 2)
        assert per_iter > (32 * 1024 / 32) * machine.memory_stall / 4096 * 0.9

    def test_bad_structure_rejected(self):
        with pytest.raises(ValueError):
            predict_streaming_stalls([], PENTIUM_PRO, 1, 1)
        with pytest.raises(ValueError):
            predict_streaming_stalls(
                [Stream("x", 8, reuse_bytes=None)], PENTIUM_PRO, 0, 1
            )


class TestAgainstSimulator:
    @pytest.mark.parametrize(
        "key", ["ov", "storage-optimized", "natural"]
    )
    def test_streaming_stencil_versions(self, key):
        """Prediction within a factor of two of simulation across the
        cache regimes (exact agreement is not expected: the model
        ignores boundary effects, the input region, and associativity)."""
        machine = PENTIUM_PRO.scaled(32)
        versions = make_stencil5()
        t_steps = 8
        for length in (512, 4096):
            sizes = {"T": t_steps, "L": length}
            sim = simulate(versions[key], sizes, machine)
            streams, per_sweep, sweeps = stencil5_streams(
                key, length, t_steps
            )
            predicted = predict_streaming_stalls(
                streams, machine, per_sweep, sweeps
            )
            measured = sim.stall_cycles_per_iteration
            if measured < 1.0 and predicted < 1.0:
                continue  # both agree the problem is cache-resident
            assert predicted == pytest.approx(measured, rel=1.0), (
                key,
                length,
                predicted,
                measured,
            )

    def test_model_orders_versions_like_simulator(self):
        """Even where magnitudes drift, the model must order the
        versions' memory behaviour the same way the simulator does."""
        machine = PENTIUM_PRO.scaled(32)
        versions = make_stencil5()
        sizes = {"T": 8, "L": 4096}
        sims = {}
        preds = {}
        for key in ("ov", "storage-optimized"):
            sims[key] = simulate(
                versions[key], sizes, machine
            ).stall_cycles_per_iteration
            streams, per_sweep, sweeps = stencil5_streams(key, 4096, 8)
            preds[key] = predict_streaming_stalls(
                streams, machine, per_sweep, sweeps
            )
        assert (sims["ov"] >= sims["storage-optimized"]) == (
            preds["ov"] >= preds["storage-optimized"]
        )
