"""Set-associative LRU cache model."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.machine.cache import Cache


def reference_lru(accesses, num_sets, ways):
    """Independent list-based LRU model; returns the hit/miss sequence."""
    sets = [[] for _ in range(num_sets)]
    results = []
    for line in accesses:
        s = sets[line % num_sets]
        if line in s:
            s.remove(line)
            s.append(line)
            results.append(True)
        else:
            results.append(False)
            if len(s) >= ways:
                s.pop(0)
            s.append(line)
    return results


class TestGeometry:
    def test_direct_mapped(self):
        c = Cache("L1", 128, 32, 1)
        assert c.num_sets == 4 and c.associativity == 1

    def test_fully_associative(self):
        c = Cache("L1", 128, 32, 0)
        assert c.num_sets == 1 and c.associativity == 4

    def test_bad_geometry(self):
        with pytest.raises(ValueError):
            Cache("x", 96, 32, 2)  # 3 lines not divisible by 2 ways
        with pytest.raises(ValueError):
            Cache("x", 16, 32, 1)  # smaller than a line
        with pytest.raises(ValueError):
            Cache("x", 0, 32, 1)


class TestBehaviour:
    def test_hit_after_miss(self):
        c = Cache("L1", 128, 32, 2)
        assert not c.access(5)
        assert c.access(5)
        assert c.hits == 1 and c.misses == 1

    def test_lru_eviction_order(self):
        c = Cache("L1", 64, 32, 2)  # one set, two ways
        c.access(0)
        c.access(2)  # same set (even lines)
        c.access(0)  # refresh 0: LRU is now 2
        c.access(4)  # evicts 2
        assert c.contains(0)
        assert not c.contains(2)

    def test_conflict_misses_direct_mapped(self):
        c = Cache("L1", 64, 32, 1)  # 2 sets
        c.access(0)
        c.access(2)  # same set as 0 -> evicts it
        assert not c.access(0)  # conflict miss despite capacity

    def test_reset(self):
        c = Cache("L1", 128, 32, 2)
        c.access(1)
        c.reset()
        assert c.accesses == 0 and not c.contains(1)

    def test_miss_rate(self):
        c = Cache("L1", 128, 32, 4)
        for line in [1, 1, 1, 2]:
            c.access(line)
        assert c.miss_rate == pytest.approx(0.5)
        assert Cache("e", 128, 32, 1).miss_rate == 0.0


@settings(max_examples=40, deadline=None)
@given(
    st.lists(st.integers(0, 40), max_size=200),
    st.sampled_from([(4, 1), (2, 2), (1, 4), (4, 2)]),
)
def test_matches_reference_model(accesses, geometry):
    num_sets, ways = geometry
    cache = Cache("t", num_sets * ways * 32, 32, ways)
    got = [cache.access(a) for a in accesses]
    assert got == reference_lru(accesses, num_sets, ways)
    assert cache.hits == sum(got)
    assert cache.misses == len(got) - sum(got)


@given(st.lists(st.integers(0, 100), max_size=150))
def test_capacity_invariant(accesses):
    cache = Cache("t", 4 * 2 * 32, 32, 2)
    for a in accesses:
        cache.access(a)
    for s in cache._sets:
        assert len(s) <= cache.associativity
