"""TLB and the full memory hierarchy: knees and cliffs."""

import pytest

from repro.machine.cache import Cache
from repro.machine.hierarchy import MemoryHierarchy
from repro.machine.tlb import TLB


def small_hierarchy(memory_bytes=4 * 4096, minor=5):
    return MemoryHierarchy(
        l1=Cache("L1", 4 * 32, 32, 1),
        l2=Cache("L2", 16 * 32, 32, 2),
        tlb=TLB("TLB", 2, 4096),
        memory_bytes=memory_bytes,
        l2_stall=10,
        memory_stall=100,
        tlb_stall=30,
        fault_stall=100000,
        minor_fault_stall=minor,
        writeback_stall=50000,
    )


class TestTLB:
    def test_lru(self):
        tlb = TLB("t", 2, 4096)
        assert not tlb.access(0)
        assert not tlb.access(1)
        assert tlb.access(0)
        assert not tlb.access(2)  # evicts 1 (LRU)
        assert not tlb.access(1)
        assert tlb.miss_rate == pytest.approx(4 / 5)

    def test_bad_geometry(self):
        with pytest.raises(ValueError):
            TLB("t", 0, 4096)


class TestLevels:
    def test_l1_hit_is_free(self):
        h = small_hierarchy()
        h.access_line(0)
        assert h.access_line(0) == 0

    def test_l2_hit_cost(self):
        h = small_hierarchy()
        h.access_line(0)
        # push line 0 out of the 4-line L1 with same-set conflicts
        h.access_line(4)  # direct-mapped: set 0 conflict
        stall = h.access_line(0)
        # back from L2 (10), maybe TLB is warm (page 0 resident)
        assert stall == 10

    def test_first_touch_is_minor_fault(self):
        h = small_hierarchy()
        stall = h.access_line(0)
        assert stall == 30 + 100 + 5  # TLB + memory + minor fault
        assert h.minor_faults == 1 and h.page_faults == 0

    def test_refetch_after_eviction_is_major_fault(self):
        h = small_hierarchy(memory_bytes=2 * 4096)
        lines_per_page = 4096 // 32
        # touch 3 pages: page 0 evicted when page 2 arrives
        for page in range(3):
            h.access_line(page * lines_per_page)
        assert h.writebacks == 1
        stall = h.access_line(0)  # page 0 must come back from disk
        assert stall >= 100000
        assert h.page_faults == 1

    def test_streaming_allocation_pays_writebacks(self):
        h = small_hierarchy(memory_bytes=2 * 4096)
        lines_per_page = 4096 // 32
        before = h.stall_cycles
        for page in range(10):
            h.access_line(page * lines_per_page)
        # 10 pages through a 2-page memory: 8 evictions, all charged
        assert h.writebacks == 8
        assert h.page_faults == 0  # never re-touched

    def test_reset(self):
        h = small_hierarchy()
        h.access_line(0)
        h.reset()
        assert h.stall_cycles == 0
        assert h.stats().accesses == 0

    def test_mixed_line_sizes_rejected(self):
        with pytest.raises(ValueError):
            MemoryHierarchy(
                l1=Cache("L1", 128, 32, 1),
                l2=Cache("L2", 256, 64, 1),
                tlb=TLB("t", 4, 4096),
                memory_bytes=4096,
                l2_stall=1,
                memory_stall=1,
                tlb_stall=1,
                fault_stall=1,
            )

    def test_page_not_multiple_of_line_rejected(self):
        with pytest.raises(ValueError):
            MemoryHierarchy(
                l1=Cache("L1", 128, 32, 1),
                l2=Cache("L2", 256, 32, 1),
                tlb=TLB("t", 4, 100),
                memory_bytes=4096,
                l2_stall=1,
                memory_stall=1,
                tlb_stall=1,
                fault_stall=1,
            )

    def test_byte_interface(self):
        h = small_hierarchy()
        h.access(0)
        assert h.access(8) == 0  # same 32-byte line

    def test_run_line_trace_stats(self):
        h = small_hierarchy()
        stats = h.run_line_trace([0, 0, 1, 4, 0])
        assert stats.accesses == 5
        assert stats.stall_cycles == h.stall_cycles
        assert stats.l1_misses == h.l1.misses


class TestScaledConfigs:
    def test_scaling_preserves_structure(self):
        from repro.machine import PENTIUM_PRO

        scaled = PENTIUM_PRO.scaled(32)
        assert scaled.l1.line_bytes == PENTIUM_PRO.l1.line_bytes
        assert scaled.l1.size_bytes < PENTIUM_PRO.l1.size_bytes
        assert scaled.memory_bytes < PENTIUM_PRO.memory_bytes
        assert scaled.cost == PENTIUM_PRO.cost
        assert scaled.scale_factor == 32
        assert PENTIUM_PRO.scaled(1) is PENTIUM_PRO

    def test_scaling_never_degenerates(self):
        from repro.machine import MACHINES

        for m in MACHINES:
            tiny = m.scaled(10**6)
            h = tiny.build_hierarchy()  # must still construct
            assert tiny.tlb_entries >= 8
            assert h.memory_pages >= 4

    def test_bad_factor(self):
        from repro.machine import ULTRA_2

        with pytest.raises(ValueError):
            ULTRA_2.scaled(0)


class TestCostModel:
    def test_iteration_cost_breakdown(self):
        from repro.machine.cost import CostModel
        from repro.mapping.expr import OpTally

        cm = CostModel(issue_width=2.0)
        cost = cm.iteration_cost(
            flops=4,
            int_ops=2,
            branches=1,
            loads=3,
            stores=1,
            address_ops=OpTally(adds=2, muls=1),
        )
        assert cost.arithmetic == (4 * 2.0 + 2 * 1.0) / 2
        assert cost.addressing == (2 * 1.0 + 1 * 4.0) / 2
        assert cost.memory_issue == 2.0
        assert cost.branches == 4.0  # not divided by issue width
        assert cost.total == pytest.approx(
            cost.arithmetic
            + cost.addressing
            + cost.memory_issue
            + cost.branches
            + cost.base
        )
