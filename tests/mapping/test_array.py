"""Natural array mappings against numpy's own linearisation."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.mapping.array import ColMajorMapping, RowMajorMapping


class TestRowMajor:
    def test_matches_numpy_ravel(self):
        shape = (4, 5, 3)
        m = RowMajorMapping(shape)
        ref = np.arange(np.prod(shape)).reshape(shape)
        for idx in np.ndindex(shape):
            assert m(idx) == ref[idx]

    def test_origin_offset(self):
        m = RowMajorMapping((3, 4), origin=(1, 1))
        assert m((1, 1)) == 0
        assert m((1, 2)) == 1
        assert m((2, 1)) == 4

    def test_expression_matches_call(self):
        m = RowMajorMapping((6, 7), origin=(1, 0))
        f = m.compiled()
        for i in range(1, 7):
            for j in range(7):
                assert f(i, j) == m((i, j))

    def test_op_cost_is_d_minus_1_muls_and_adds(self):
        m = RowMajorMapping((5, 6, 7))
        ops = m.op_cost()
        assert ops.muls + ops.adds >= 2  # strides 42 and 7: two muls
        assert ops.mods == 0


class TestColMajor:
    def test_matches_numpy_fortran_order(self):
        shape = (4, 5)
        m = ColMajorMapping(shape)
        ref = np.arange(20).reshape(shape, order="F")
        for idx in np.ndindex(shape):
            assert m(idx) == ref[idx]

    def test_first_axis_unit_stride(self):
        m = ColMajorMapping((10, 10))
        assert m((1, 0)) - m((0, 0)) == 1
        assert m((0, 1)) - m((0, 0)) == 10


class TestValidation:
    def test_bad_shape(self):
        with pytest.raises(ValueError):
            RowMajorMapping(())
        with pytest.raises(ValueError):
            RowMajorMapping((0, 5))

    def test_origin_mismatch(self):
        with pytest.raises(ValueError):
            RowMajorMapping((3, 3), origin=(0,))

    def test_point_dim_check(self):
        with pytest.raises(ValueError):
            RowMajorMapping((3, 3))((1, 2, 3))


@given(
    st.lists(st.integers(1, 6), min_size=1, max_size=3),
)
def test_bijective_over_box(shape):
    m = RowMajorMapping(shape)
    seen = set()
    for idx in np.ndindex(tuple(shape)):
        loc = m(idx)
        assert 0 <= loc < m.size
        seen.add(loc)
    assert len(seen) == m.size
