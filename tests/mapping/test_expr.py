"""Address-expression IR: simplification, op counting, printing."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.mapping.expr import Add, Const, Mod, Mul, OpTally, Var, affine


class TestSimplification:
    def test_add_zero(self):
        assert Add.make(Var("x"), Const(0)) == Var("x")
        assert Add.make(Const(0), Var("x")) == Var("x")

    def test_mul_identity_and_zero(self):
        assert Mul.make(Const(1), Var("x")) == Var("x")
        assert Mul.make(Const(0), Var("x")) == Const(0)
        assert Mul.make(Var("x"), Const(1)) == Var("x")

    def test_constant_folding(self):
        assert Add.make(Const(2), Const(3)) == Const(5)
        assert Mul.make(Const(2), Const(3)) == Const(6)
        assert Mod.make(Const(7), Const(3)) == Const(1)

    def test_mod_one_is_zero(self):
        assert Mod.make(Var("x"), Const(1)) == Const(0)

    def test_mod_requires_positive_constant(self):
        with pytest.raises(ValueError):
            Mod.make(Var("x"), Const(0))
        with pytest.raises(ValueError):
            Mod.make(Var("x"), Var("y"))


class TestOpCounts:
    def test_fig1b_mapping_cost(self):
        # (-1,1).q + n: one subtraction, one addition, no multiplies.
        e = affine((-1, 1), ("i", "j"), 8)
        assert e.op_counts() == OpTally(adds=2, muls=0, mods=0)

    def test_general_2d_array_cost(self):
        # row-major (s2, 1): one multiply, one add.
        e = affine((13, 1), ("i", "j"), 0)
        assert e.op_counts() == OpTally(adds=1, muls=1, mods=0)

    def test_power_of_two_scale_counts_as_add(self):
        e = affine((2, 0), ("i", "j"), 0)
        assert e.op_counts().muls == 0
        e8 = affine((8, 1), ("i", "j"), 0)
        assert e8.op_counts() == OpTally(adds=2, muls=0)
        e16 = affine((16, 1), ("i", "j"), 0)
        assert e16.op_counts().muls == 1

    def test_mod_counted(self):
        e = affine((1, 0), ("i", "j"), 0) % 2
        assert e.op_counts().mods == 1

    def test_tally_arithmetic(self):
        t = OpTally(adds=1) + OpTally(muls=2, mods=1)
        assert t == OpTally(adds=1, muls=2, mods=1)
        assert t.total == 4


class TestPrinting:
    def test_negative_coefficients_print_as_subtraction(self):
        assert affine((-1, 1), ("i", "j"), 0).to_python() == "-i + j"
        assert affine((1, -1), ("i", "j"), 0).to_python() == "i - j"

    def test_negative_constant(self):
        assert affine((1,), ("x",), -3).to_python() == "x - 3"

    def test_mod_precedence(self):
        e = affine((0, 2), ("t", "x"), 0) + (affine((1, 0), ("t", "x"), 0) % 2)
        # Python and C give % higher precedence than +, so this is exact.
        assert e.to_python() == "2 * x + t % 2"

    def test_c_matches_python_except_sign_safe_mod(self):
        # Mod-free expressions render identically in both languages.
        plain = affine((3, -1), ("a", "b"), 7)
        assert plain.to_c() == plain.to_python()
        # Python's % floors, C's truncates: the C rendering wraps the
        # modulus in the Euclidean form so negative operands agree.
        e = plain % 5
        assert e.to_python() == "(3 * a - b + 7) % 5"
        assert e.to_c() == "(((3 * a - b + 7) % 5 + 5) % 5)"


@given(
    st.tuples(st.integers(-9, 9), st.integers(-9, 9)),
    st.integers(-20, 20),
    st.tuples(st.integers(0, 30), st.integers(0, 30)),
)
def test_printed_source_evaluates_identically(coeffs, const, point):
    """to_python() is executable and agrees with evaluate()."""
    e = affine(coeffs, ("i", "j"), const)
    env = {"i": point[0], "j": point[1]}
    via_eval = eval(e.to_python(), {}, dict(env))
    assert via_eval == e.evaluate(env)


@given(
    st.tuples(st.integers(-5, 5), st.integers(-5, 5)),
    st.integers(2, 7),
    st.tuples(st.integers(0, 20), st.integers(0, 20)),
)
def test_mod_expression_source_matches(coeffs, modulus, point):
    if coeffs == (0, 0):
        return
    e = affine(coeffs, ("i", "j"), 0) % modulus
    env = {"i": point[0], "j": point[1]}
    assert eval(e.to_python(), {}, dict(env)) == e.evaluate(env)
