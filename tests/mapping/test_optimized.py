"""Rolling-buffer (storage optimized) mappings."""

import pytest

from repro.analysis.liveness import is_mapping_legal
from repro.core.stencil import Stencil
from repro.mapping.optimized import RollingBufferMapping
from repro.schedule.lex import InterchangedSchedule, LexicographicSchedule
from repro.util.polyhedron import Polytope


class TestWindows:
    def test_fig1c_window_is_m_plus_2(self, fig1_stencil):
        m = 13
        isg = Polytope.from_box((1, 1), (9, m))
        rb = RollingBufferMapping(fig1_stencil, isg)
        assert rb.window == m + 2

    def test_stencil5_window_is_l_plus_3(self, stencil5):
        length = 40
        isg = Polytope.from_box((1, 0), (8, length - 1))
        rb = RollingBufferMapping(stencil5, isg)
        assert rb.window == length + 3

    def test_interchanged_window(self, fig1_stencil):
        # inner loop over the first axis (extent n0): window n0 + 2.
        n0, n1 = 11, 17
        isg = Polytope.from_box((1, 1), (n0, n1))
        rb = RollingBufferMapping(fig1_stencil, isg, perm=(1, 0))
        assert rb.window == n0 + 2

    def test_window_override_must_be_safe(self, fig1_stencil):
        isg = Polytope.from_box((1, 1), (6, 9))
        RollingBufferMapping(fig1_stencil, isg, window=100)  # larger: fine
        with pytest.raises(ValueError):
            RollingBufferMapping(fig1_stencil, isg, window=5)  # too small

    def test_minimal_window_helper(self, fig1_stencil):
        isg = Polytope.from_box((1, 1), (6, 9))
        assert RollingBufferMapping.minimal_window(fig1_stencil, isg) == 11


class TestMinimality:
    """window = span + 1 is exactly minimal for the order it serves."""

    def test_minimal_window_is_legal_under_its_order(self, fig1_stencil):
        isg = Polytope.from_box((1, 1), (6, 9))
        rb = RollingBufferMapping(fig1_stencil, isg)
        order = list(LexicographicSchedule().order([(1, 6), (1, 9)]))
        assert is_mapping_legal(rb, fig1_stencil, order)

    def test_smaller_windows_clobber(self, fig1_stencil):
        """Build smaller buffers by hand and watch them fail.

        One below the declared window (= span) is still legal under the
        idealised read-all-then-write iteration semantics: the overwriter
        of a value is exactly its last consumer.  The paper's ``m + 2``
        (span + 1) is the count for real generated code, where the write
        may not alias a pending read without the temp scalars Figure 1(c)
        introduces.  Two below — span - 1 — clobbers under any semantics,
        so the constructor's minimum is off by at most the one deliberate
        safety slot.
        """
        isg = Polytope.from_box((1, 1), (6, 9))
        legal = RollingBufferMapping(fig1_stencil, isg)

        def shrunk(by):
            rb = RollingBufferMapping(fig1_stencil, isg)
            rb._window -= by
            return rb

        order = list(LexicographicSchedule().order([(1, 6), (1, 9)]))
        assert is_mapping_legal(legal, fig1_stencil, order)
        assert is_mapping_legal(shrunk(1), fig1_stencil, order)
        assert not is_mapping_legal(shrunk(2), fig1_stencil, order)

    def test_interchanged_buffer_fits_interchanged_order(
        self, fig1_stencil
    ):
        isg = Polytope.from_box((1, 1), (8, 11))
        rb = RollingBufferMapping(fig1_stencil, isg, perm=(1, 0))
        order = list(InterchangedSchedule((1, 0)).order([(1, 8), (1, 11)]))
        assert is_mapping_legal(rb, fig1_stencil, order)
        # ... and does NOT fit the original lexicographic order.
        lex = list(LexicographicSchedule().order([(1, 8), (1, 11)]))
        assert not is_mapping_legal(rb, fig1_stencil, lex)


class TestValidation:
    def test_bad_perm(self, fig1_stencil):
        isg = Polytope.from_box((1, 1), (4, 4))
        with pytest.raises(ValueError):
            RollingBufferMapping(fig1_stencil, isg, perm=(0, 0))

    def test_dim_mismatch(self, fig1_stencil):
        with pytest.raises(ValueError):
            RollingBufferMapping(
                fig1_stencil, Polytope.from_box((0, 0, 0), (2, 2, 2))
            )

    def test_illegal_order_rejected(self):
        # Interchanging the loops of a nest whose only dependence is
        # (1,-1) makes the dependence point *backwards* in the new order
        # (the interchange itself is illegal for this stencil); the
        # rolling buffer must refuse to serve that order.
        s = Stencil([(1, -1)])
        isg = Polytope.from_box((1, 1), (4, 4))
        RollingBufferMapping(s, isg)  # original order: fine
        with pytest.raises(ValueError):
            RollingBufferMapping(s, isg, perm=(1, 0))


class TestExpression:
    def test_expression_matches_call(self, fig1_stencil):
        isg = Polytope.from_box((1, 1), (6, 9))
        rb = RollingBufferMapping(fig1_stencil, isg)
        f = rb.compiled()
        for i in range(1, 7):
            for j in range(1, 10):
                assert f(i, j) == rb((i, j))

    def test_effective_cost_is_pointer_bump(self, fig1_stencil):
        isg = Polytope.from_box((1, 1), (6, 9))
        rb = RollingBufferMapping(fig1_stencil, isg)
        assert rb.op_cost().mods == 1
        eff = rb.effective_op_cost()
        assert eff.mods == 0 and eff.adds == 1


class TestCollisionsAtOddBounds:
    """Non-power-of-two extents: the window-distant collisions are real,
    the race detector sees them, and the witnesses replay."""

    ODD = Polytope.from_box((1, 0), (5, 6))  # inner extent 7, window 9

    def test_collision_groups_are_window_cosets(self, fig1_stencil):
        from repro.analysis.races import region_points

        rb = RollingBufferMapping(fig1_stencil, self.ODD)
        window = rb.size
        points = region_points(self.ODD)
        flat = rb.compiled()
        groups = rb.collision_groups(points)
        assert len(groups) == window
        for group in groups.values():
            locs = {flat(*p) for p in group}
            assert len(locs) == 1

    def test_race_detector_flags_the_window_distance(self, fig1_stencil):
        from repro.analysis.races import find_storage_races

        rb = RollingBufferMapping(fig1_stencil, self.ODD)
        races = find_storage_races(rb, fig1_stencil, self.ODD)
        assert races
        # Every reported pair genuinely collides.
        for race in races:
            assert rb(race.first) == rb(race.second)

    def test_witnesses_replay_on_fixture_corpus(self, fig1_stencil, stencil5):
        from repro.analysis.liveness import find_mapping_violation
        from repro.analysis.races import find_storage_races, race_witness

        fixtures = [
            (fig1_stencil, ((1, 5), (0, 6))),
            (stencil5, ((1, 4), (0, 8))),
        ]
        for stencil, bounds in fixtures:
            box = Polytope.from_loop_bounds(bounds)
            rb = RollingBufferMapping(stencil, box)
            races = find_storage_races(rb, stencil, box, limit=3)
            assert races
            for race in races:
                order = race_witness(rb, stencil, bounds, race)
                assert order is not None
                assert (
                    find_mapping_violation(rb, stencil, order) is not None
                )

    def test_own_schedule_stays_legal(self, fig1_stencil):
        rb = RollingBufferMapping(fig1_stencil, self.ODD)
        order = LexicographicSchedule().order(((1, 5), (0, 6)))
        assert is_mapping_legal(rb, fig1_stencil, order)
