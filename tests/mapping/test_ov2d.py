"""The 2-D OV storage mapping: correctness of the Section 4 construction."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mapping.ov2d import OVMapping2D
from repro.util.polyhedron import Polytope

ovs = st.tuples(st.integers(-4, 4), st.integers(-4, 4)).filter(
    lambda v: v != (0, 0)
)
layouts = st.sampled_from(["interleaved", "consecutive"])


def box(n=8, m=9):
    return Polytope.from_box((0, 0), (n, m))


class TestPaperExamples:
    def test_fig1b_mapping(self):
        # SM(q) = (-1,1).q + n over the bordered ISG.
        n, m = 6, 8
        isg = Polytope.from_box((0, 0), (n, m))
        sm = OVMapping2D((1, 1), isg)
        assert sm.mapping_vector == (-1, 1)
        assert sm.shift == n
        assert sm.size == n + m + 1
        assert sm.expression(["i", "j"]).to_python() == f"-i + j + {n}"

    def test_fig5_interleaved(self):
        isg = Polytope.from_box((1, 0), (8, 9))
        sm = OVMapping2D((2, 0), isg, layout="interleaved")
        assert sm.mapping_vector == (0, 2)
        assert sm.gcd == 2
        assert sm((3, 4)) - sm((3, 3)) == 2  # interleaved classes
        assert sm.expression(["t", "x"]).to_python() == "2 * x + t % 2"

    def test_fig5_consecutive(self):
        isg = Polytope.from_box((1, 0), (8, 9))
        sm = OVMapping2D((2, 0), isg, layout="consecutive")
        assert sm.mapping_vector == (0, 1)
        assert sm((3, 4)) - sm((3, 3)) == 1  # unit stride per class
        assert sm.expression(["t", "x"]).to_python() == "x + 10 * (t % 2)"


class TestValidation:
    def test_zero_ov(self):
        with pytest.raises(ValueError):
            OVMapping2D((0, 0), box())

    def test_wrong_dims(self):
        with pytest.raises(ValueError):
            OVMapping2D((1, 1, 1), box())
        with pytest.raises(ValueError):
            OVMapping2D((1, 1), Polytope.from_box((0, 0, 0), (1, 1, 1)))

    def test_bad_layout(self):
        with pytest.raises(ValueError):
            OVMapping2D((1, 1), box(), layout="diagonal")


class TestStorageEquivalence:
    """The defining property: SM(p) == SM(q)  <=>  p - q is a multiple
    of the OV (requirement 1 of Section 4.1, strengthened to iff)."""

    @settings(max_examples=60, deadline=None)
    @given(ovs, layouts)
    def test_iff_multiple_of_ov(self, ov, layout):
        isg = box()
        sm = OVMapping2D(ov, isg, layout=layout)
        points = [(i, j) for i in range(9) for j in range(10)]
        locations = {p: sm(p) for p in points}
        for p in points:
            q = (p[0] + ov[0], p[1] + ov[1])
            if q in locations:
                assert locations[p] == locations[q]
        # injectivity across classes: group points by location and check
        # that cohabitants differ by integer multiples of ov.
        by_loc = {}
        for p, loc in locations.items():
            by_loc.setdefault(loc, []).append(p)
        for cohabitants in by_loc.values():
            base = cohabitants[0]
            for p in cohabitants[1:]:
                d = (p[0] - base[0], p[1] - base[1])
                # d must be an integer multiple of ov
                if ov[0]:
                    k, r = divmod(d[0], ov[0])
                    assert r == 0 and k * ov[1] == d[1]
                else:
                    assert d[0] == 0
                    k, r = divmod(d[1], ov[1])
                    assert r == 0

    @settings(max_examples=40, deadline=None)
    @given(ovs, layouts)
    def test_range_and_density(self, ov, layout):
        sm = OVMapping2D(ov, box(), layout=layout)
        points = [(i, j) for i in range(9) for j in range(10)]
        used = {sm(p) for p in points}
        assert min(used) >= 0
        assert max(used) < sm.size
        # tightness: the mapping is a bijection onto the attained
        # (projection value, storage class) pairs.  (An ISG small relative
        # to the mapping vector can skip some projection values / corner
        # classes, so the allocation may exceed the attained set — but the
        # mapping never collides across pairs.)
        attained = {
            (
                sm.storage_class(p),
                (-(sm.ov[1] // sm.gcd)) * p[0]
                + (sm.ov[0] // sm.gcd) * p[1],
            )
            for p in points
        }
        assert len(used) == len(attained)

    @settings(max_examples=40, deadline=None)
    @given(ovs, layouts)
    def test_compiled_matches_direct(self, ov, layout):
        sm = OVMapping2D(ov, box(), layout=layout)
        f = sm.compiled()
        for i in range(0, 9, 2):
            for j in range(0, 10, 3):
                assert f(i, j) == sm((i, j))


class TestClassBookkeeping:
    def test_prime_single_class(self):
        sm = OVMapping2D((3, 1), box())
        assert sm.gcd == 1
        assert sm.storage_class((4, 7)) == 0

    def test_nonprime_classes_cycle(self):
        sm = OVMapping2D((3, 0), box(12, 5))
        assert sm.gcd == 3
        classes = [sm.storage_class((t, 2)) for t in range(6)]
        assert classes == [0, 1, 2, 0, 1, 2]

    def test_size_is_gcd_times_projection(self):
        isg = box(10, 7)
        prime = OVMapping2D((1, 1), isg)
        scaled = OVMapping2D((3, 3), isg)
        assert scaled.size == 3 * prime.size

    def test_expression_with_class_matches_call(self):
        isg = box(8, 9)
        for layout in ("interleaved", "consecutive"):
            sm = OVMapping2D((2, 2), isg, layout=layout)
            for i in range(9):
                for j in range(10):
                    cls = sm.storage_class((i, j))
                    expr = sm.expression_with_class(["i", "j"], cls)
                    value = eval(expr.to_python(), {}, {"i": i, "j": j})
                    assert value == sm((i, j))

    def test_expression_with_class_bounds(self):
        sm = OVMapping2D((2, 0), box())
        with pytest.raises(ValueError):
            sm.expression_with_class(["i", "j"], 2)


class TestEffectiveOpCost:
    def test_prime_cost_unchanged(self):
        sm = OVMapping2D((1, 1), box())
        assert sm.effective_op_cost() == sm.op_cost()

    def test_nonprime_mod_removed(self):
        sm = OVMapping2D((2, 0), box(), layout="consecutive")
        assert sm.op_cost().mods == 1
        eff = sm.effective_op_cost()
        assert eff.mods == 0
        assert eff.total < sm.op_cost().total
