"""The general-dimension OV mapping (our extension of Section 4)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mapping.ov2d import OVMapping2D
from repro.mapping.ovnd import OVMappingND
from repro.util.polyhedron import Polytope

ov3 = st.tuples(
    st.integers(-3, 3), st.integers(-3, 3), st.integers(-3, 3)
).filter(lambda v: v != (0, 0, 0))


def box3(a=4, b=5, c=6):
    return Polytope.from_box((0, 0, 0), (a, b, c))


class TestAgainst2D:
    @settings(max_examples=40, deadline=None)
    @given(
        st.tuples(st.integers(-3, 3), st.integers(-3, 3)).filter(
            lambda v: v != (0, 0)
        ),
        st.sampled_from(["interleaved", "consecutive"]),
    )
    def test_same_equivalence_classes_as_2d(self, ov, layout):
        isg = Polytope.from_box((0, 0), (7, 8))
        m2 = OVMapping2D(ov, isg, layout=layout)
        mn = OVMappingND(ov, isg, layout=layout)
        points = [(i, j) for i in range(8) for j in range(9)]
        # Same partition into storage classes (locations may be permuted).
        group2 = {}
        groupn = {}
        for p in points:
            group2.setdefault(m2(p), set()).add(p)
            groupn.setdefault(mn(p), set()).add(p)
        assert set(map(frozenset, group2.values())) == set(
            map(frozenset, groupn.values())
        )

    def test_same_gcd(self):
        isg = Polytope.from_box((0, 0), (7, 8))
        assert OVMappingND((2, 4), isg).gcd == 2


class TestThreeD:
    @settings(max_examples=30, deadline=None)
    @given(ov3, st.sampled_from(["interleaved", "consecutive"]))
    def test_storage_equivalence(self, ov, layout):
        isg = box3()
        sm = OVMappingND(ov, isg, layout=layout)
        import itertools

        points = list(itertools.product(range(5), range(6), range(7)))
        loc = {p: sm(p) for p in points}
        for p in points:
            q = tuple(a + b for a, b in zip(p, ov))
            if q in loc:
                assert loc[p] == loc[q], (p, q, ov)
        for p in points:
            assert 0 <= loc[p] < sm.size

    @settings(max_examples=30, deadline=None)
    @given(ov3)
    def test_no_false_sharing(self, ov):
        """Cohabiting points must differ by an integral multiple of ov."""
        sm = OVMappingND(ov, box3())
        import itertools

        by_loc = {}
        for p in itertools.product(range(5), range(6), range(7)):
            by_loc.setdefault(sm(p), []).append(p)
        for cohabitants in by_loc.values():
            base = cohabitants[0]
            for p in cohabitants[1:]:
                d = tuple(a - b for a, b in zip(p, base))
                nz = next(k for k in range(3) if ov[k] != 0)
                k, r = divmod(d[nz], ov[nz])
                assert r == 0
                assert all(d[i] == k * ov[i] for i in range(3))

    def test_compiled_and_expression_agree(self):
        sm = OVMappingND((2, 2, 0), box3(), layout="consecutive")
        f = sm.compiled()
        import itertools

        for p in itertools.product(range(5), range(6), range(7)):
            assert f(*p) == sm(p)

    def test_perpendicular_size(self):
        sm = OVMappingND((1, 0, 0), box3(4, 5, 6))
        # perpendicular box: the (j, k) face -> 6 * 7 locations
        assert sm.perpendicular_size == 6 * 7
        assert sm.size == 6 * 7

    def test_effective_op_cost_removes_mod(self):
        sm = OVMappingND((2, 2, 2), box3())
        assert sm.op_cost().mods == 1
        assert sm.effective_op_cost().mods == 0


class TestValidation:
    def test_zero_rejected(self):
        with pytest.raises(ValueError):
            OVMappingND((0, 0, 0), box3())

    def test_dim_mismatch(self):
        with pytest.raises(ValueError):
            OVMappingND((1, 1), box3())

    def test_bad_layout(self):
        with pytest.raises(ValueError):
            OVMappingND((1, 1, 1), box3(), layout="weird")

    def test_class_expression_bounds(self):
        sm = OVMappingND((2, 0, 0), box3())
        with pytest.raises(ValueError):
            sm.expression_with_class(["a", "b", "c"], 5)
