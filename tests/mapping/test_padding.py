"""Padded OV mappings: layout changes, semantics preserved."""

import pytest

from repro.analysis.liveness import is_mapping_legal
from repro.core.stencil import Stencil
from repro.mapping import OVMapping2D, PaddedOVMapping2D, pad_for_cache
from repro.schedule import TiledSchedule, required_skew
from repro.util.polyhedron import Polytope


def isg(t=8, length=16):
    return Polytope.from_box((1, 0), (t, length - 1))


class TestSemantics:
    @pytest.mark.parametrize("pad", [0, 1, 4, 7])
    def test_storage_equivalence_preserved(self, pad):
        pm = PaddedOVMapping2D((2, 0), isg(), pad=pad)
        for t in range(1, 7):
            for x in range(16):
                assert pm((t, x)) == pm((t + 2, x))
                assert pm((t, x)) != pm((t + 1, x))
                assert 0 <= pm((t, x)) < pm.size

    def test_no_cross_class_collisions(self):
        pm = PaddedOVMapping2D((2, 0), isg(), pad=3)
        seen = {}
        for t in range(1, 9):
            for x in range(16):
                loc = pm((t, x))
                key = (x, t % 2)
                if key in seen:
                    assert seen[key] == loc
                else:
                    assert loc not in seen.values()
                    seen[key] = loc

    def test_size_accounting(self):
        base = OVMapping2D((2, 0), isg(), layout="consecutive")
        pm = PaddedOVMapping2D((2, 0), isg(), pad=5)
        assert pm.size == base.size + (pm.gcd - 1) * 5

    def test_negative_pad_rejected(self):
        with pytest.raises(ValueError):
            PaddedOVMapping2D((2, 0), isg(), pad=-1)

    def test_expression_matches_call(self):
        pm = PaddedOVMapping2D((2, 0), isg(), pad=4)
        f = pm.compiled()
        for t in range(1, 9):
            for x in range(16):
                assert f(t, x) == pm((t, x))

    def test_class_expression_matches(self):
        pm = PaddedOVMapping2D((2, 2), isg(), pad=2)
        for t in range(1, 7):
            for x in range(16):
                cls = pm.storage_class((t, x))
                expr = pm.expression_with_class(["t", "x"], cls)
                assert (
                    eval(expr.to_python(), {}, {"t": t, "x": x})
                    == pm((t, x))
                )

    def test_still_universal(self, stencil5):
        pm = PaddedOVMapping2D((2, 0), isg(), pad=4)
        sched = TiledSchedule((3, 4), skew=required_skew(stencil5))
        assert is_mapping_legal(
            pm, stencil5, sched.order([(1, 8), (0, 15)])
        )


class TestCollisionsAtOddBounds:
    """Non-power-of-two extents (satellite of the race-detector work):
    padding must change addresses, never the collision structure."""

    ODD = Polytope.from_box((1, 0), (7, 10))  # extents 7 x 11

    def test_collision_groups_are_exactly_ov_cosets(self):
        from repro.analysis.races import region_points

        pm = PaddedOVMapping2D((2, 0), self.ODD, pad=5)
        points = region_points(self.ODD)
        for group in pm.collision_groups(points).values():
            group = sorted(group)
            for a, b in zip(group, group[1:]):
                # Successive sharers differ by exactly the OV.
                assert (b[0] - a[0], b[1] - a[1]) == (2, 0)

    def test_padding_preserves_collision_groups(self):
        from repro.analysis.races import region_points

        base = OVMapping2D((2, 0), self.ODD, layout="consecutive")
        points = region_points(self.ODD)
        for pad in (1, 3, 9):
            pm = PaddedOVMapping2D((2, 0), self.ODD, pad=pad)
            assert {
                frozenset(g) for g in pm.collision_groups(points).values()
            } == {
                frozenset(g) for g in base.collision_groups(points).values()
            }

    def test_race_detector_proves_padded_mapping_safe(self, stencil5):
        from repro.analysis.races import find_storage_races

        pm = PaddedOVMapping2D((2, 0), self.ODD, pad=4)
        assert find_storage_races(pm, stencil5, self.ODD) == []


class TestPadHeuristic:
    def test_line_aligned_blocks_get_one_line(self):
        assert pad_for_cache(1024, 32) == 4  # 4 doubles per 32B line
        assert pad_for_cache(4096, 64) == 8

    def test_line_alignment_is_the_trigger(self):
        # 100 doubles = 25 full lines: aligned, pad.  1023 and 101 are
        # not line-multiples, so consecutive blocks are already de-phased.
        assert pad_for_cache(100, 32) == 4
        assert pad_for_cache(1023, 32) == 0
        assert pad_for_cache(101, 32) == 0

    def test_cache_aware_pad_is_half_cache_plus_line(self):
        # 512-byte direct-mapped L1: 32 doubles (half) + 4 (one line).
        assert pad_for_cache(1024, 32, cache_bytes=512) == 36
        assert pad_for_cache(1023, 32, cache_bytes=512) == 0


class TestPaddingFixesThrashing:
    def test_direct_mapped_conflict_removed(self):
        """The Figures 9-11 Ultra 2 effect in miniature: a direct-mapped
        cache exactly one block large; unpadded classes collide on every
        access, one line of padding de-phases them."""
        from repro.machine.cache import Cache

        length = 64  # elements per class block
        big_isg = Polytope.from_box((1, 0), (8, length - 1))
        unpadded = OVMapping2D((2, 0), big_isg, layout="consecutive")
        padded = PaddedOVMapping2D(
            (2, 0), big_isg, pad=pad_for_cache(length, 32)
        )

        def misses(mapping):
            cache = Cache("L1", length * 8, 32, 1)  # one block exactly
            f = mapping.compiled()
            for t in range(2, 8):
                for x in range(length):
                    # read the two producers in the two classes, then write
                    cache.access(f(t - 1, x) * 8 // 32)
                    cache.access(f(t - 2, x) * 8 // 32)
                    cache.access(f(t, x) * 8 // 32)
            return cache.misses

        assert misses(padded) < 0.5 * misses(unpadded)
