"""Native-tier fixtures: one shared-object cache per test session.

A session-scoped cache directory keeps every compiled object out of the
user's real cache and makes the warm-load assertions deterministic: the
first test that touches a version pays its compile, every later test
hits the cache.
"""

from __future__ import annotations

import pytest

from repro.codegen.build import discover_toolchain

HAS_CC = discover_toolchain() is not None

requires_cc = pytest.mark.skipif(
    not HAS_CC, reason="no C toolchain on PATH (or REPRO_CC=none)"
)


@pytest.fixture(scope="session")
def so_cache(tmp_path_factory) -> str:
    return str(tmp_path_factory.mktemp("so-cache"))
