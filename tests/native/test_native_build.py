"""Build-layer behaviour: caching, fingerprints, degradation, self-heal.

The compile cache must be warm-start cheap (zero recompiles on a second
run), keyed on the toolchain identity (a compiler upgrade is a cache
miss, not a stale hit), and the whole tier must degrade — with a
structured :class:`~repro.resilience.budget.Degradation` — rather than
crash on machines without a compiler.
"""

from __future__ import annotations

import subprocess
import sys

import numpy as np
import pytest

from repro import obs
from repro.codegen import build as build_mod
from repro.codegen.build import (
    Toolchain,
    discover_toolchain,
    reset_toolchain_cache,
    source_key,
    toolchain_fingerprint,
)
from repro.codes import make_stencil5
from repro.execution import execute, execute_native
from repro.execution.native import NativeFallback

from tests.native.conftest import requires_cc

SIZES = {"T": 4, "L": 13}


@pytest.fixture
def no_toolchain():
    """A world without a C compiler (restored + re-probed afterwards).

    Saves/restores the env by hand rather than via monkeypatch: the
    re-probe on teardown must run *after* the env is back, and fixture
    teardown order would run monkeypatch's undo too late.
    """
    import os

    old = os.environ.get(build_mod.CC_ENV)
    os.environ[build_mod.CC_ENV] = "none"
    reset_toolchain_cache()
    yield
    if old is None:
        os.environ.pop(build_mod.CC_ENV, None)
    else:
        os.environ[build_mod.CC_ENV] = old
    reset_toolchain_cache()


class TestToolchainIdentity:
    def test_fingerprint_distinguishes_toolchains(self):
        a = Toolchain(cc="/usr/bin/gcc", version="gcc 12.2.0")
        b = Toolchain(cc="/usr/bin/gcc", version="gcc 13.1.0")
        c = Toolchain(cc="/usr/bin/gcc", version="gcc 12.2.0", flags=("-O2",))
        assert len({a.fingerprint, b.fingerprint, c.fingerprint}) == 3

    def test_so_key_folds_in_toolchain(self):
        old = Toolchain(cc="/usr/bin/gcc", version="gcc 12.2.0")
        new = Toolchain(cc="/usr/bin/gcc", version="gcc 13.1.0")
        src = "void run(void) {}\n"
        assert source_key(src, old) != source_key(src, new)
        assert source_key(src, old) == source_key(src, old)

    def test_disabled_toolchain_fingerprints_as_none(self, no_toolchain):
        assert discover_toolchain() is None
        assert toolchain_fingerprint() == "none"

    def test_engine_fingerprint_folds_in_toolchain(self, monkeypatch):
        from repro.experiments import harness
        from repro.store.fingerprint import reset_engine_fingerprint

        reset_engine_fingerprint()
        monkeypatch.setattr(
            build_mod, "toolchain_fingerprint", lambda: "gcc-old"
        )
        fp_old = harness.engine_fingerprint()
        reset_engine_fingerprint()
        monkeypatch.setattr(
            build_mod, "toolchain_fingerprint", lambda: "gcc-new"
        )
        fp_new = harness.engine_fingerprint()
        reset_engine_fingerprint()
        assert fp_old != fp_new


@requires_cc
class TestWarmCache:
    def test_second_run_never_recompiles(self, so_cache, monkeypatch):
        version = make_stencil5()["ov"]
        first = execute_native(version, SIZES, cache_dir=so_cache)
        assert first.engine_used == "native"
        compiles_before = obs.get_metrics().counter("native.compiles").value

        def boom(*args, **kwargs):  # any compiler invocation is a failure
            raise AssertionError("warm cache must not invoke the compiler")

        monkeypatch.setattr(build_mod.subprocess, "run", boom)
        second = execute_native(version, SIZES, cache_dir=so_cache)
        assert second.engine_used == "native"
        assert np.array_equal(first.storage, second.storage)
        compiles_after = obs.get_metrics().counter("native.compiles").value
        assert compiles_after == compiles_before

    def test_corrupt_so_self_heals(self, tmp_path):
        from repro.codegen import generate_c
        from repro.codegen.build import compile_so

        version = make_stencil5()["natural"]
        cache = tmp_path / "cache"
        # Compile WITHOUT loading: dlopen caches already-loaded paths per
        # process, so a path loaded once would mask the corruption.
        so_path = compile_so(generate_c(version, SIZES), cache_dir=cache)
        so_path.write_bytes(b"this is not a shared object")
        healed = execute_native(version, SIZES, cache_dir=cache)
        assert healed.engine_used == "native"
        reference = execute(version, SIZES)
        assert np.array_equal(healed.storage, reference.storage)
        quarantined = list((cache / ".corrupt").iterdir())
        assert len(quarantined) == 1


class TestDegradation:
    def test_no_toolchain_degrades_to_vectorized(self, no_toolchain):
        version = make_stencil5()["ov"]
        with pytest.warns(NativeFallback):
            result = execute_native(version, SIZES)
        assert result.engine_used == "vectorized"
        assert result.degradation is not None
        assert result.degradation.reason == "no-toolchain"
        reference = execute(version, SIZES)
        assert np.array_equal(result.storage, reference.storage)

    def test_no_toolchain_fallback_false_raises(self, no_toolchain):
        with pytest.raises(ValueError, match="no-toolchain"):
            execute_native(make_stencil5()["ov"], SIZES, fallback=False)

    def test_compile_failure_degrades(self, so_cache, monkeypatch):
        if discover_toolchain() is None:
            pytest.skip("degradation reason differs without a toolchain")

        def broken(*args, **kwargs):
            raise build_mod.CompileError("synthetic compiler explosion")

        monkeypatch.setattr(build_mod, "compile_so", broken)
        result = execute_native(make_stencil5()["ov"], SIZES)
        assert result.engine_used == "vectorized"
        assert result.degradation.reason == "compile-failed"

    def test_pipeline_records_degradation(self, no_toolchain):
        from repro.codes import get_spec
        from repro.pipeline import compile_spec

        result = compile_spec(get_spec("stencil5"), engine="native")
        artifact = result.artifact("execute")
        assert artifact.verified
        assert artifact.engine == "native"
        assert artifact.engine_used == "vectorized"
        assert artifact.degradation["reason"] == "no-toolchain"

    def test_cli_end_to_end_degraded_line(self, tmp_path):
        """The acceptance check: every entry point completes without a
        compiler, and says so."""
        import os

        env = dict(os.environ)
        env[build_mod.CC_ENV] = "none"
        env["PYTHONPATH"] = "src"
        proc = subprocess.run(
            [
                sys.executable,
                "-m",
                "repro.cli",
                "run",
                "examples/specs/heat7.json",
                "--engine=native",
            ],
            capture_output=True,
            text=True,
            env=env,
            cwd=str(
                __import__("pathlib").Path(__file__).resolve().parents[2]
            ),
            timeout=300,
        )
        assert proc.returncode == 0, proc.stderr
        assert "DEGRADED: no-toolchain" in proc.stdout
        assert "engine vectorized" in proc.stdout


@requires_cc
class TestPipelineNative:
    def test_pipeline_native_execute_and_c_codegen(self, so_cache, monkeypatch):
        from repro.codes import get_spec
        from repro.pipeline import compile_spec

        monkeypatch.setenv("REPRO_SO_CACHE", so_cache)
        result = compile_spec(
            get_spec("stencil5"), engine="native", codegen=True
        )
        executed = result.artifact("execute")
        assert executed.engine_used == "native"
        assert executed.degradation is None
        generated = result.artifact("codegen")
        assert generated.supported
        assert generated.lang == "c"
        assert "void run(" in generated.source

    def test_engine_is_part_of_the_cache_key(self, so_cache, monkeypatch):
        from repro.codes import get_spec
        from repro.pipeline import ArtifactCache, compile_spec

        monkeypatch.setenv("REPRO_SO_CACHE", so_cache)
        cache = ArtifactCache()
        spec = get_spec("simple2d")
        first = compile_spec(spec, engine="interpreter", cache=cache)
        second = compile_spec(spec, engine="native", cache=cache)
        # The prefix stages hit; execute must rerun under the new engine.
        assert "execute" in first.stages_run
        assert "execute" in second.stages_run
        assert "uov-search" in second.cache_hits
        assert second.artifact("execute").engine_used == "native"
