"""Differential suite: native vs interpreter vs vectorized, bit for bit.

The native tier's whole claim is that compiling the generated C changes
*nothing* about the numbers: same storage end-state, same live-out
values, for every code x mapping x schedule combination, at sizes chosen
to be odd / non-power-of-two so flattened indexing and halo geometry
get no accidental alignment help.
"""

from pathlib import Path

import numpy as np
import pytest

from repro.codes import make_jacobi, make_psm, make_simple2d, make_stencil5
from repro.execution import (
    execute,
    execute_native,
    execute_vectorized,
    verify_versions,
)
from repro.frontend import StencilSpec, make_versions, synthesize_code

from tests.native.conftest import requires_cc

EXAMPLES = sorted(
    (Path(__file__).resolve().parents[2] / "examples" / "specs").glob(
        "*.json"
    )
)

#: Odd, non-power-of-two sizes per code.
ODD_SIZES = {
    make_stencil5: {"T": 4, "L": 13},
    make_psm: {"n0": 5, "n1": 7},
    make_simple2d: {"n": 5, "m": 7},
    make_jacobi: {"T": 3, "L": 11},
}


def version_cases():
    cases = []
    for maker, sizes in ODD_SIZES.items():
        for key, version in maker().items():
            cases.append(
                pytest.param(version, sizes, id=f"{version.code.name}-{key}")
            )
    return cases


def example_cases():
    cases = []
    for path in EXAMPLES:
        spec = StencilSpec.load(path)
        code = synthesize_code(spec)
        for key, version in make_versions(code).items():
            cases.append(
                pytest.param(
                    version, dict(spec.sizes), id=f"{spec.name}-{key}"
                )
            )
    return cases


@requires_cc
class TestNativeDifferential:
    @pytest.mark.parametrize("version,sizes", version_cases())
    def test_native_matches_both_engines(self, version, sizes, so_cache):
        native = execute_native(version, sizes, cache_dir=so_cache)
        assert native.engine_used == "native"
        assert native.degradation is None
        scalar = execute(version, sizes)
        vector = execute_vectorized(version, sizes)
        assert np.array_equal(native.storage, scalar.storage)
        assert np.array_equal(native.storage, vector.storage)
        assert np.array_equal(
            native.output_values(), scalar.output_values()
        )

    @pytest.mark.parametrize("version,sizes", example_cases())
    def test_example_specs_match(self, version, sizes, so_cache):
        native = execute_native(version, sizes, cache_dir=so_cache)
        assert native.engine_used == "native"
        reference = execute(version, sizes)
        assert np.array_equal(native.storage, reference.storage)

    def test_seeded_inputs_flow_through_halo(self, so_cache):
        # psm's context (weight table, random strings) is seed-dependent;
        # the halo fill and the hook callback must both see the same ctx.
        version = make_psm()["ov-optimal"]
        sizes = {"n0": 5, "n1": 7}
        for seed in (0, 7):
            native = execute_native(
                version, sizes, seed=seed, cache_dir=so_cache
            )
            scalar = execute(version, sizes, seed=seed)
            assert np.array_equal(native.storage, scalar.storage)

    def test_verify_versions_accepts_native(self, so_cache, monkeypatch):
        monkeypatch.setenv("REPRO_SO_CACHE", so_cache)
        family = make_stencil5()
        outputs = verify_versions(
            [family["natural"], family["ov"], family["ov-tiled"]],
            {"T": 4, "L": 13},
            engine="native",
        )
        assert outputs.size > 0
