"""Native kernel telemetry: instrumented codegen and kernel timers."""

from __future__ import annotations

import numpy as np
import pytest

from repro import obs
from repro.codegen.c_gen import generate_c
from repro.codes import make_stencil5
from repro.execution import execute_native

from tests.native.conftest import requires_cc

SIZES = {"T": 4, "L": 13}


@pytest.fixture(autouse=True)
def _clean_obs():
    obs.reset()
    yield
    obs.reset()


@pytest.fixture
def version():
    return make_stencil5()["ov"]


class TestProfiledCodegen:
    def test_profiled_source_brackets_the_loop_nest(self, version):
        source = generate_c(version, SIZES, profile=True)
        assert "clock_gettime" in source
        assert "repro_kernel_ns" in source
        assert "#include <time.h>" in source
        # The timer wraps the nest, not each iteration: exactly two calls.
        assert source.count("clock_gettime(") == 2

    def test_default_source_is_uninstrumented(self, version):
        source = generate_c(version, SIZES)
        assert "clock_gettime" not in source
        assert "repro_kernel_ns" not in source

    def test_profiled_source_hashes_separately(self, version):
        # Distinct sources land in distinct .so cache slots, so flipping
        # --profile can never serve a stale uninstrumented object.
        assert generate_c(version, SIZES) != generate_c(
            version, SIZES, profile=True
        )


@requires_cc
class TestProfiledExecution:
    def test_kernel_time_is_reported(self, version, so_cache):
        result = execute_native(
            version, SIZES, cache_dir=so_cache, profile=True
        )
        assert result.engine_used == "native"
        assert result.kernel_s > 0
        snap = obs.get_metrics().snapshot()
        assert snap["counters"]["native.profiled_runs"] == 1
        assert snap["histograms"]["native.kernel_s"]["count"] == 1

    def test_profiling_keeps_bit_identity(self, version, so_cache):
        plain = execute_native(
            version, SIZES, cache_dir=so_cache, profile=False
        )
        profiled = execute_native(
            version, SIZES, cache_dir=so_cache, profile=True
        )
        np.testing.assert_array_equal(profiled.storage, plain.storage)

    def test_unprofiled_run_has_no_kernel_time(self, version, so_cache):
        result = execute_native(
            version, SIZES, cache_dir=so_cache, profile=False
        )
        assert not hasattr(result, "kernel_s")
        counters = obs.get_metrics().snapshot()["counters"]
        assert "native.profiled_runs" not in counters

    def test_default_follows_the_global_profiling_flag(
        self, version, so_cache
    ):
        obs.set_profiling(True)
        result = execute_native(version, SIZES, cache_dir=so_cache)
        assert result.kernel_s > 0

    def test_toolchain_and_compile_metrics_recorded(self, version, tmp_path):
        from repro.codegen.build import reset_toolchain_cache

        reset_toolchain_cache()  # discovery is memoised per process
        execute_native(version, SIZES, cache_dir=tmp_path)
        snap = obs.get_metrics().snapshot()
        assert snap["gauges"]["native.toolchain.probe_s"] >= 0
        assert snap["histograms"]["native.compile.wall_s"]["count"] == 1
