"""Run ledger: append/read roundtrip, self-healing, aggregation."""

import json

import pytest

from repro import obs
from repro.obs.ledger import (
    LEDGER_ENV,
    RunLedger,
    aggregate,
    configure_ledger,
    get_ledger,
    ledger_record,
    read_entries,
    render_stats,
    shutdown_ledger,
)


@pytest.fixture(autouse=True)
def _clean_obs():
    obs.reset()
    yield
    obs.reset()


class TestRoundtrip:
    def test_record_then_read_back(self, tmp_path):
        path = tmp_path / "runs.jsonl"
        ledger = RunLedger(path)
        ledger.record("execute", engine="native", wall_s=0.5, code="stencil5")
        ledger.record("compile", spec="heat7", cached=True)
        ledger.close()
        entries, corrupt = read_entries(path)
        assert corrupt == 0
        assert [e["kind"] for e in entries] == ["execute", "compile"]
        assert entries[0]["engine"] == "native"
        assert all("ts" in e for e in entries)

    def test_lines_are_digest_wrapped(self, tmp_path):
        path = tmp_path / "runs.jsonl"
        ledger = RunLedger(path)
        ledger.record("execute", engine="vectorized", wall_s=0.1)
        ledger.close()
        wrapper = json.loads(path.read_text().splitlines()[0])
        assert set(wrapper) == {"schema", "digest", "body"}

    def test_append_only_across_handles(self, tmp_path):
        path = tmp_path / "runs.jsonl"
        for k in range(3):
            ledger = RunLedger(path)
            ledger.record("execute", engine="interpreter", wall_s=k)
            ledger.close()
        entries, _ = read_entries(path)
        assert len(entries) == 3

    def test_missing_file_reads_empty(self, tmp_path):
        assert read_entries(tmp_path / "nope.jsonl") == ([], 0)


class TestSelfHealing:
    def test_corrupt_lines_skipped_and_counted(self, tmp_path):
        path = tmp_path / "runs.jsonl"
        ledger = RunLedger(path)
        ledger.record("execute", engine="native", wall_s=0.5)
        ledger.close()
        with open(path, "a") as fh:
            fh.write("{torn half-li\n")  # torn write
            fh.write(json.dumps({"schema": 1, "digest": "x", "body": {}}))
            fh.write("\n")  # digest mismatch (bit rot)
        ledger = RunLedger(path)
        ledger.record("execute", engine="native", wall_s=0.6)
        ledger.close()
        with pytest.warns(UserWarning, match="corrupt"):
            entries, corrupt = read_entries(path)
        assert corrupt == 2
        assert [e["wall_s"] for e in entries] == [0.5, 0.6]
        counters = obs.get_metrics().snapshot()["counters"]
        assert counters["ledger.corrupt_lines"] == 2

    def test_corrupt_warning_deduplicated_per_file(self, tmp_path):
        path = tmp_path / "runs.jsonl"
        path.write_text("garbage\n")
        with pytest.warns(UserWarning):
            read_entries(path)
        import warnings

        with warnings.catch_warnings():
            warnings.simplefilter("error")
            read_entries(path)  # second read: no warning


class TestLifecycle:
    def test_off_by_default(self, monkeypatch, tmp_path):
        monkeypatch.delenv(LEDGER_ENV, raising=False)
        configure_ledger(None)
        assert get_ledger() is None
        assert ledger_record("execute", engine="x") is None

    def test_env_fallback(self, monkeypatch, tmp_path):
        path = tmp_path / "env.jsonl"
        monkeypatch.setenv(LEDGER_ENV, str(path))
        configure_ledger(None)
        try:
            assert ledger_record("execute", engine="native") is not None
        finally:
            shutdown_ledger()
        entries, _ = read_entries(path)
        assert len(entries) == 1

    def test_explicit_path_wins_and_reset_closes(self, monkeypatch, tmp_path):
        monkeypatch.setenv(LEDGER_ENV, str(tmp_path / "env.jsonl"))
        configure_ledger(str(tmp_path / "flag.jsonl"))
        assert get_ledger().path.name == "flag.jsonl"
        obs.reset()
        assert get_ledger() is None


class TestAggregate:
    def _entries(self):
        return [
            {"kind": "execute", "ts": 10.0, "engine": "native",
             "wall_s": 0.1, "code": "a", "version": "ov"},
            {"kind": "execute", "ts": 11.0, "engine": "native",
             "wall_s": 0.3, "code": "b", "version": "ov"},
            {"kind": "execute", "ts": 12.0, "engine": "interpreter",
             "wall_s": 2.0, "label": "slowest-one"},
            {"kind": "compile", "ts": 13.0, "cached": True},
            {"kind": "compile", "ts": 14.0, "cached": False},
            {"kind": "experiment", "ts": 15.0, "experiment": "fig7"},
        ]

    def test_engine_comparison_and_slowest(self):
        agg = aggregate(self._entries())
        assert agg["by_kind"] == {"execute": 3, "compile": 2, "experiment": 1}
        native = agg["engines"]["native"]
        assert native["runs"] == 2
        assert native["mean_s"] == pytest.approx(0.2)
        assert native["max_s"] == pytest.approx(0.3)
        assert agg["slowest"][0]["label"] == "slowest-one"
        assert agg["compile_cache_hit_rate"] == pytest.approx(0.5)
        assert agg["span_s"] == pytest.approx(5.0)

    def test_render_stats_text(self, tmp_path):
        path = tmp_path / "runs.jsonl"
        ledger = RunLedger(path)
        for e in self._entries():
            kind = e.pop("kind")
            e.pop("ts")
            ledger.record(kind, **e)
        ledger.close()
        text = render_stats(path)
        assert "engine comparison" in text
        assert "slowest-one" in text
        assert "hit rate 50%" in text

    def test_render_stats_empty(self, tmp_path):
        text = render_stats(tmp_path / "none.jsonl")
        assert "no entries" in text


class TestCliIntegration:
    def test_run_with_ledger_then_stats(self, tmp_path, capsys):
        from repro.cli import main

        path = tmp_path / "runs.jsonl"
        rc = main(
            ["run", "simple2d", "--sizes", "n=4,m=6",
             "--ledger", str(path)]
        )
        assert rc == 0
        assert get_ledger() is None  # closed by the CLI lifecycle
        rc = main(["stats", str(path)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "by kind" in out
        assert "compile" in out and "execute" in out

    def test_stats_without_a_ledger_is_a_usage_error(self, monkeypatch):
        from repro.cli import main

        monkeypatch.delenv(LEDGER_ENV, raising=False)
        assert main(["stats"]) == 2
