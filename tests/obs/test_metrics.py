"""The metrics registry: instruments, snapshot round-trip, rendering."""

import json

import pytest

from repro import obs
from repro.obs.metrics import Metrics


@pytest.fixture(autouse=True)
def _clean_obs():
    obs.reset()
    yield
    obs.reset()


class TestInstruments:
    def test_counter_create_or_get(self):
        m = Metrics()
        m.counter("a").inc()
        m.counter("a").inc(4)
        assert m.counter("a").value == 5

    def test_gauge_last_write_wins(self):
        m = Metrics()
        m.gauge("g").set(3)
        m.gauge("g").set(1.5)
        assert m.gauge("g").value == 1.5

    def test_histogram_streaming_summary(self):
        m = Metrics()
        h = m.histogram("h")
        h.observe_many([4, 1, 7])
        assert (h.count, h.total, h.min, h.max) == (3, 12.0, 1.0, 7.0)
        assert h.mean == 4.0

    def test_empty_histogram_mean_is_zero(self):
        assert Metrics().histogram("h").mean == 0.0


class TestSnapshot:
    def test_round_trips_through_json(self):
        m = Metrics()
        m.counter("search.nodes").inc(10)
        m.gauge("queue.depth").set(3)
        m.histogram("batch").observe_many([2.0, 8.0])
        snap = m.snapshot()
        assert json.loads(json.dumps(snap)) == snap
        assert snap["counters"] == {"search.nodes": 10}
        assert snap["gauges"] == {"queue.depth": 3.0}
        assert snap["histograms"]["batch"] == {
            "count": 2,
            "sum": 10.0,
            "min": 2.0,
            "max": 8.0,
            "mean": 5.0,
        }

    def test_empty_histogram_serializes_without_infinities(self):
        m = Metrics()
        m.histogram("h")
        snap = m.snapshot()
        assert snap["histograms"]["h"]["min"] is None
        assert snap["histograms"]["h"]["max"] is None
        json.dumps(snap)  # must be valid JSON (no inf)

    def test_reset_clears_everything(self):
        m = Metrics()
        m.counter("c").inc()
        m.reset()
        assert m.snapshot() == {
            "counters": {},
            "gauges": {},
            "histograms": {},
        }


class TestGlobalRegistry:
    def test_get_metrics_is_process_wide(self):
        obs.get_metrics().counter("x").inc()
        assert obs.get_metrics().snapshot()["counters"]["x"] == 1

    def test_render_names_every_instrument(self):
        m = obs.get_metrics()
        m.counter("c.one").inc(2)
        m.gauge("g.one").set(9)
        m.histogram("h.one").observe(3)
        text = obs.render_profile()
        for name in ("c.one", "g.one", "h.one"):
            assert name in text

    def test_render_when_empty(self):
        assert "no metrics" in obs.render_profile()
