"""The disabled path is cheap enough to leave instrumentation on.

The hard perf gate lives in ``benchmarks/test_bench_obs.py`` (end-to-end
vs. BENCH_baseline.json); this is the fast unit-level bound: a no-op
span must cost on the order of a function call, not a syscall.
"""

import time

import pytest

from repro import obs
from repro.obs.events import reset_dedup


@pytest.fixture(autouse=True)
def _clean_obs():
    obs.reset()
    yield
    obs.reset()


N = 50_000


def test_noop_span_is_shared_and_allocation_free():
    assert obs.span("a") is obs.span("b", attr=1)


def test_noop_span_overhead_bound():
    assert not obs.enabled()
    t0 = time.perf_counter()
    for _ in range(N):
        with obs.span("hot.loop", i=1) as sp:
            sp.set(x=2)
    elapsed = time.perf_counter() - t0
    per_call = elapsed / N
    # Generous CI-safe ceiling: a real syscall/IO path would blow
    # through this by orders of magnitude.
    assert per_call < 20e-6, f"no-op span costs {per_call * 1e6:.2f}µs"


def test_noop_event_overhead_bound():
    t0 = time.perf_counter()
    for _ in range(N):
        obs.event("hot.event", i=3)
    per_call = (time.perf_counter() - t0) / N
    assert per_call < 10e-6, f"no-op event costs {per_call * 1e6:.2f}µs"


def test_deduplicated_warning_is_cheap_after_the_first(recwarn):
    reset_dedup()
    obs.warn_once("k", "warned once")
    t0 = time.perf_counter()
    for _ in range(1000):
        obs.warn_once("k", "warned once")
    per_call = (time.perf_counter() - t0) / 1000
    assert per_call < 100e-6
    assert len(recwarn) == 1
    assert obs.get_metrics().counter("warning").value == 1001
