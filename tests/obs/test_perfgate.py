"""perf-check: BENCH schema validation and the noise-tolerant gate."""

import json

import pytest

from repro import obs
from repro.obs.perfgate import (
    PERF_INJECT_ENV,
    BaselineError,
    Probe,
    check_samples,
    load_baseline,
    mad,
    measure,
    render_results,
    run_gate,
    validate_baseline,
)


@pytest.fixture(autouse=True)
def _clean_obs():
    obs.reset()
    yield
    obs.reset()


def _payload(**over):
    payload = {
        "schema": 1,
        "context": {
            "python": "3.x",
            "numpy": "1.x",
            "machine": "test",
            "datetime": "2026-01-01",
        },
        "benchmarks": {"probe-key": {"median_s": 0.01}},
    }
    payload.update(over)
    return payload


class TestSchema:
    def test_valid_payload_passes(self):
        assert validate_baseline(_payload()) is not None

    @pytest.mark.parametrize(
        "mutate, message",
        [
            (lambda p: p.pop("schema"), "schema"),
            (lambda p: p.update(schema=99), "schema"),
            (lambda p: p.pop("context"), "context"),
            (lambda p: p["context"].pop("machine"), "machine"),
            (lambda p: p.update(benchmarks={}), "benchmarks"),
            (
                lambda p: p["benchmarks"].update({"probe-key": {}}),
                "median_s",
            ),
            (
                lambda p: p["benchmarks"].update(
                    {"probe-key": {"median_s": -1}}
                ),
                "median_s",
            ),
        ],
    )
    def test_violations_raise(self, mutate, message):
        payload = _payload()
        mutate(payload)
        with pytest.raises(BaselineError, match=message):
            validate_baseline(payload)

    def test_load_missing_file(self, tmp_path):
        with pytest.raises(BaselineError, match="missing"):
            load_baseline(tmp_path / "BENCH_nope.json")

    def test_committed_baselines_conform(self, repo_root=None):
        from pathlib import Path

        root = Path(__file__).resolve().parents[2]
        load_baseline(root / "BENCH_baseline.json")
        load_baseline(root / "BENCH_native.json")


class TestCheckSamples:
    def test_fast_run_passes(self):
        ok, reason = check_samples([0.008, 0.009, 0.010], 0.01)
        assert ok and "ok" in reason

    def test_big_stable_slowdown_fails(self):
        ok, reason = check_samples([0.020, 0.0201, 0.0199], 0.01)
        assert not ok and "SLOWDOWN" in reason

    def test_noisy_slowdown_abstains(self):
        # Median is 2x baseline but the run's own MAD swamps the
        # difference — the gate abstains instead of crying wolf.
        samples = [0.005, 0.020, 0.040]
        assert mad(samples) * 3.0 > 0.020 - 0.01
        ok, reason = check_samples(samples, 0.01)
        assert ok and "noise" in reason

    def test_injection_multiplies_samples(self, monkeypatch):
        monkeypatch.setenv(PERF_INJECT_ENV, "100.0")
        samples = measure(lambda: None, rounds=3, warmup=0)
        monkeypatch.delenv(PERF_INJECT_ENV)
        clean = measure(lambda: None, rounds=3, warmup=0)
        assert min(samples) > max(clean)


def _fake_probe(name="fast-probe", key="probe-key", run=lambda: None):
    return Probe(name, "BENCH_test.json", key, lambda: run)


def _write_baseline(tmp_path, median_s=0.01):
    payload = _payload()
    payload["benchmarks"]["probe-key"]["median_s"] = median_s
    (tmp_path / "BENCH_test.json").write_text(json.dumps(payload))


class TestRunGate:
    def test_clean_gate_passes(self, tmp_path):
        _write_baseline(tmp_path, median_s=0.01)
        ok, results = run_gate(tmp_path, [_fake_probe()], rounds=3)
        assert ok
        assert results[0].ok and results[0].median_s < 0.01

    def test_injected_slowdown_fails(self, tmp_path, monkeypatch):
        # A no-op probe against a generous baseline passes clean; the
        # injection hook must make the very same gate fail.
        _write_baseline(tmp_path, median_s=1e-6)

        def slow():
            for _ in range(2000):
                pass

        monkeypatch.setenv(PERF_INJECT_ENV, "1000.0")
        ok, results = run_gate(
            tmp_path, [_fake_probe(run=slow)], rounds=3, mad_tolerance=0.0
        )
        assert not ok
        assert "SLOWDOWN" in results[0].reason

    def test_invalid_baseline_fails_without_timing(self, tmp_path):
        (tmp_path / "BENCH_test.json").write_text("{}")
        ok, results = run_gate(tmp_path, [_fake_probe()], rounds=3)
        assert not ok
        assert "baseline invalid" in results[0].reason

    def test_missing_key_fails(self, tmp_path):
        _write_baseline(tmp_path)
        probe = Probe(
            "missing", "BENCH_test.json", "no-such-key", lambda: (lambda: None)
        )
        ok, results = run_gate(tmp_path, [probe], rounds=3)
        assert not ok
        assert "no baseline entry" in results[0].reason

    def test_unavailable_probe_skips_not_fails(self, tmp_path):
        _write_baseline(tmp_path)
        probe = Probe("skippy", "BENCH_test.json", "probe-key", lambda: None)
        ok, results = run_gate(tmp_path, [probe], rounds=3)
        assert ok
        assert "skipped" in results[0].reason

    def test_gate_writes_a_ledger_entry(self, tmp_path):
        _write_baseline(tmp_path)
        obs.configure_ledger(str(tmp_path / "runs.jsonl"))
        run_gate(tmp_path, [_fake_probe()], rounds=2)
        obs.shutdown_ledger()
        from repro.obs.ledger import read_entries

        entries, _ = read_entries(tmp_path / "runs.jsonl")
        assert entries[0]["kind"] == "perf-check"
        assert entries[0]["ok"] is True
        assert entries[0]["results"][0]["probe"] == "fast-probe"

    def test_render_results_table(self, tmp_path):
        _write_baseline(tmp_path)
        _, results = run_gate(tmp_path, [_fake_probe()], rounds=2)
        text = render_results(results)
        assert "fast-probe" in text and "ok" in text


class TestCli:
    def test_perf_check_exit_codes(self, tmp_path, monkeypatch, capsys):
        from repro.cli import main

        _write_baseline(tmp_path, median_s=1e-6)
        monkeypatch.setattr(
            "repro.obs.perfgate.default_probes",
            lambda: [_fake_probe(run=lambda: sum(range(2000)))],
        )
        monkeypatch.setenv(PERF_INJECT_ENV, "1000.0")
        # --mad-tolerance 0 pins the verdict to the ratio alone: on a
        # loaded machine the noise-abstention could mask the injected
        # slowdown (it has its own dedicated tests above).
        rc = main(
            ["perf-check", "--repo-root", str(tmp_path), "--rounds", "2",
             "--mad-tolerance", "0",
             "--json-out", str(tmp_path / "out.json")]
        )
        assert rc == 1
        payload = json.loads((tmp_path / "out.json").read_text())
        assert payload["ok"] is False
        monkeypatch.delenv(PERF_INJECT_ENV)
        (tmp_path / "BENCH_test.json").write_text(
            json.dumps(_payload(
                benchmarks={"probe-key": {"median_s": 10.0}}
            ))
        )
        rc = main(["perf-check", "--repo-root", str(tmp_path), "--rounds", "2"])
        assert rc == 0
        assert "PASS" in capsys.readouterr().out
