"""Reuse-distance profiler: exactness vs. the cache simulator.

The load-bearing property (ISSUE 7 acceptance criterion): the Mattson
stack-distance histogram must predict the miss count of a
fully-associative LRU cache *bit-exactly*, at every capacity, for every
code × mapping pair — validated against both the bare
:class:`~repro.machine.cache.Cache` and the full
:class:`~repro.machine.hierarchy.MemoryHierarchy` (whose L1 sees the
same stream the profiler does).
"""

import random

import pytest

from repro.codes import CODES, get_versions
from repro.execution.trace import line_trace
from repro.machine.analytic import stencil5_streams
from repro.machine.cache import Cache
from repro.machine.hierarchy import MemoryHierarchy
from repro.machine.tlb import TLB
from repro.obs.reuse import ReuseProfiler, profile_version

LINE = 32

#: Small-but-interesting sizes per code (collapse-friendly, fast).
SMALL_SIZES = {
    "simple2d": {"n": 6, "m": 9},
    "stencil5": {"T": 4, "L": 24},
    "psm": {"n0": 5, "n1": 6},
    "jacobi": {"T": 4, "L": 24},
}

#: Every code × mapping pair in the registry.
ALL_PAIRS = [
    (code, key)
    for code in sorted(CODES.names())
    for key in sorted(get_versions(code))
]


def fully_assoc_hierarchy(capacity_lines: int) -> MemoryHierarchy:
    """A hierarchy whose L1 is a fully-associative LRU cache of
    ``capacity_lines`` lines (associativity=0), with L2/TLB/memory huge
    so only the L1 filters the stream."""
    return MemoryHierarchy(
        l1=Cache("l1", capacity_lines * LINE, LINE, associativity=0),
        l2=Cache("l2", 1 << 24, LINE, associativity=0),
        tlb=TLB("tlb", 1 << 16, 4096),
        memory_bytes=1 << 30,
        l2_stall=5,
        memory_stall=50,
        tlb_stall=10,
        fault_stall=100000,
    )


class TestExactnessVsSimulator:
    @pytest.mark.parametrize("code,key", ALL_PAIRS)
    def test_matches_fully_associative_lru_exactly(self, code, key):
        version = get_versions(code)[key]
        sizes = SMALL_SIZES[code]
        trace = list(line_trace(version, sizes, LINE))
        profiler = ReuseProfiler().feed(trace)
        for capacity in (1, 2, 4, 8, 16, 64, 256):
            hierarchy = fully_assoc_hierarchy(capacity)
            stats = hierarchy.run_line_trace(iter(trace))
            assert profiler.misses(capacity) == stats.l1_misses, (
                f"{code}:{key} capacity={capacity}"
            )
            assert profiler.accesses == stats.accesses

    def test_matches_bare_cache_on_random_trace(self):
        rng = random.Random(1998)
        trace = [rng.randrange(200) for _ in range(20000)]
        profiler = ReuseProfiler().feed(trace)
        for capacity in (1, 3, 17, 50, 128, 200, 300):
            cache = Cache("c", capacity * LINE, LINE, associativity=0)
            for line in trace:
                cache.access(line)
            assert profiler.misses(capacity) == cache.misses

    def test_fenwick_growth_preserves_exactness(self):
        """A trace long enough to force several tree doublings."""
        rng = random.Random(7)
        trace = [rng.randrange(64) for _ in range(9000)]
        profiler = ReuseProfiler().feed(trace)
        cache = Cache("c", 24 * LINE, LINE, associativity=0)
        for line in trace:
            cache.access(line)
        assert profiler.misses(24) == cache.misses


class TestProfilerProperties:
    def test_distance_semantics(self):
        p = ReuseProfiler()
        assert p.access(10) is None  # cold
        assert p.access(10) == 1  # immediate reuse
        p.access(11)
        p.access(12)
        assert p.access(10) == 3  # {11, 12, itself}
        assert p.cold_misses == 3
        assert p.distinct_lines == 3

    def test_monotone_miss_curve(self):
        rng = random.Random(3)
        p = ReuseProfiler().feed(rng.randrange(50) for _ in range(4000))
        curve = p.working_set_curve(range(0, 60, 3))
        misses = [m for _, m, _ in curve]
        assert misses == sorted(misses, reverse=True)
        assert misses[-1] == p.cold_misses  # floor = compulsory
        for c, m, r in curve:
            assert m == p.misses(c)
            assert r == pytest.approx(m / p.accesses)

    def test_zero_capacity_misses_everything(self):
        p = ReuseProfiler().feed([1, 1, 2, 1])
        assert p.misses(0) == p.accesses
        assert p.miss_ratio(0) == 1.0

    def test_region_histograms_partition_the_global_one(self):
        version = get_versions("psm")["ov"]
        sizes = SMALL_SIZES["psm"]
        profile = profile_version(version, sizes, line_bytes=LINE)
        p = profile.profiler
        assert set(p.regions) <= {"storage", "input", "table"}
        assert "table" in p.regions  # psm reads its match table
        assert sum(s.accesses for s in p.regions.values()) == p.accesses
        assert (
            sum(s.cold_misses for s in p.regions.values()) == p.cold_misses
        )
        for capacity in (2, 8, 32):
            assert (
                sum(s.misses(capacity) for s in p.regions.values())
                == p.misses(capacity)
            )

    def test_snapshot_is_json_friendly(self):
        import json

        version = get_versions("stencil5")["ov"]
        profile = profile_version(version, SMALL_SIZES["stencil5"], LINE)
        snap = profile.profiler.snapshot()
        json.dumps(snap)
        assert snap["accesses"] == profile.profiler.accesses
        assert "cold" in snap["buckets"]

    def test_miss_ratio_table(self):
        version = get_versions("stencil5")["storage-optimized"]
        profile = profile_version(version, SMALL_SIZES["stencil5"], LINE)
        table = profile.miss_ratio_table([64, 1024, 65536])
        assert [row[0] for row in table] == [64, 1024, 65536]
        ratios = [row[2] for row in table]
        assert ratios == sorted(ratios, reverse=True)


class TestAnalyticCrossCheck:
    """The measured working-set knee must land near the analytic model's
    ``reuse_bytes`` guess for the untiled stencil5 versions — the two
    independent estimates of the paper's central quantity must agree."""

    @pytest.mark.parametrize(
        "key", ["natural", "ov", "storage-optimized"]
    )
    def test_knee_tracks_analytic_reuse_bytes(self, key):
        T, L = 8, 64
        profile = profile_version(
            get_versions("stencil5")[key], {"T": T, "L": L}, LINE
        )
        p = profile.profiler
        streams, _, _ = stencil5_streams(key, L, T)
        analytic = max(
            s.reuse_bytes for s in streams if s.reuse_bytes is not None
        )
        knee = p.knee_bytes(LINE)
        assert analytic / 2 <= knee <= analytic * 2.5
        # Above the knee the cache holds the working set: miss ratio is
        # (near) the compulsory floor.  Far below it, it is much worse.
        floor = p.cold_misses / p.accesses
        assert p.predicted_miss_ratio(4 * analytic, LINE) <= floor + 0.05
        assert p.predicted_miss_ratio(analytic // 8, LINE) > floor + 0.05

    def test_storage_optimized_has_denser_reuse(self):
        """The paper's trade, measured: the optimized mapping's working
        set fits where the OV-mapped one does not."""
        T, L = 8, 64
        knees = {}
        for key in ("ov", "storage-optimized"):
            profile = profile_version(
                get_versions("stencil5")[key], {"T": T, "L": L}, LINE
            )
            knees[key] = profile.profiler.knee_bytes(LINE)
        assert knees["storage-optimized"] < knees["ov"]
