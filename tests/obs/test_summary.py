"""trace-summary: tree reconstruction and ASCII rendering."""

import io
import json

import pytest

from repro import obs
from repro.cli import main
from repro.obs.summary import load_trace, render_summary
from repro.obs.tracer import Tracer


@pytest.fixture(autouse=True)
def _clean_obs():
    obs.reset()
    yield
    obs.reset()


def _trace_lines() -> list[str]:
    sink = io.StringIO()
    tracer = Tracer(sink, program="unit-test")
    with tracer.span("root", figure="fig7"):
        with tracer.span("child-a"):
            tracer.event("cache.hit")
            tracer.event("cache.hit")
        with tracer.span("child-b"):
            pass
    tracer.finish({"counters": {"sim.runs": 3}, "gauges": {}, "histograms": {}})
    return sink.getvalue().splitlines()


class TestLoadTrace:
    def test_rebuilds_the_tree_from_parent_ids(self):
        summary = load_trace(_trace_lines())
        (root,) = summary.roots
        assert root.name == "root"
        assert [c.name for c in root.children] == ["child-a", "child-b"]
        assert len(summary.spans) == 3
        assert summary.metrics == {
            "counters": {"sim.runs": 3},
            "gauges": {},
            "histograms": {},
        }

    def test_self_time_subtracts_children(self):
        summary = load_trace(_trace_lines())
        (root,) = summary.roots
        child_wall = sum(c.wall_s for c in root.children)
        assert root.self_s == pytest.approx(root.wall_s - child_wall)

    def test_events_attach_to_their_span(self):
        summary = load_trace(_trace_lines())
        (root,) = summary.roots
        child_a = root.children[0]
        assert [e["name"] for e in child_a.events] == [
            "cache.hit",
            "cache.hit",
        ]

    def test_tolerates_a_torn_final_line(self):
        lines = _trace_lines()
        lines.append('{"type": "span", "id": 99, "na')  # killed mid-write
        summary = load_trace(lines)
        assert len(summary.spans) == 3

    def test_rejects_bad_json_mid_file(self):
        lines = _trace_lines()
        lines.insert(1, "{nope")
        with pytest.raises(ValueError, match="line 2"):
            load_trace(lines)

    def test_rejects_records_without_a_type(self):
        with pytest.raises(ValueError, match="without a type"):
            load_trace([json.dumps({"id": 1}), json.dumps({"type": "meta"})])

    def test_unknown_record_types_are_skipped(self):
        lines = _trace_lines()
        lines.insert(1, json.dumps({"type": "future-thing", "x": 1}))
        assert len(load_trace(lines).spans) == 3


class TestRender:
    def test_tree_top_k_events_and_counters_sections(self):
        text = render_summary(load_trace(_trace_lines()))
        assert "trace: unit-test" in text
        assert "root" in text and "  child-a" in text and "  child-b" in text
        assert "top 3 spans by self time:" in text
        assert "cache.hit" in text and "x2" in text
        assert "counters (final snapshot):" in text
        assert "sim.runs" in text

    def test_top_limits_the_ranking(self):
        text = render_summary(load_trace(_trace_lines()), top=1)
        assert "top 1 spans by self time:" in text

    def test_empty_trace_renders(self):
        assert "(no spans recorded)" in render_summary(load_trace([]))


class TestCli:
    def test_trace_summary_renders_a_real_trace(self, tmp_path, capsys):
        path = tmp_path / "t.jsonl"
        path.write_text("\n".join(_trace_lines()) + "\n")
        assert main(["trace-summary", str(path), "--top", "2"]) == 0
        out = capsys.readouterr().out
        assert "root" in out and "top 2 spans" in out

    def test_missing_file_fails_cleanly(self, tmp_path, capsys):
        assert main(["trace-summary", str(tmp_path / "nope.jsonl")]) == 2
        assert "cannot read" in capsys.readouterr().err

    def test_invalid_file_fails_cleanly(self, tmp_path, capsys):
        path = tmp_path / "bad.jsonl"
        path.write_text("{broken\n{also broken\n")
        assert main(["trace-summary", str(path)]) == 2
        assert "not a valid trace" in capsys.readouterr().err


def _engine_trace_lines() -> list[str]:
    sink = io.StringIO()
    tracer = Tracer(sink, program="unit-test")
    with tracer.span("engine.run", requested="native", engine_used="native"):
        with tracer.span(
            "native.run", profiled=True, kernel_s=0.002
        ):
            pass
    with tracer.span(
        "engine.run", requested="native", engine_used="vectorized"
    ):
        tracer.event(
            "native.fallback",
            code="stencil5",
            version="ov",
            reason="no-toolchain",
        )
    with tracer.span("search"):
        tracer.event(
            "resilience.degradation",
            site="pipeline.uov-search",
            reason="budget-exhausted",
            fallback="incumbent",
        )
    tracer.finish({"counters": {}, "gauges": {}, "histograms": {}})
    return sink.getvalue().splitlines()


class TestEngineSections:
    def test_engines_section_tallies_requested_vs_used(self):
        text = render_summary(load_trace(_engine_trace_lines()))
        assert "engines:" in text
        assert "native " in text or "native  " in text
        assert "native -> vectorized" in text
        assert "DEGRADED" in text

    def test_profiled_kernel_time_is_summed(self):
        text = render_summary(load_trace(_engine_trace_lines()))
        assert "native kernel time (profiled)" in text
        assert "2.00ms" in text

    def test_degradations_section_lists_reasons(self):
        text = render_summary(load_trace(_engine_trace_lines()))
        assert "degradations:" in text
        assert "native.fallback: stencil5:ov (no-toolchain)" in text
        assert "pipeline.uov-search: budget-exhausted -> incumbent" in text

    def test_sections_absent_without_engine_activity(self):
        text = render_summary(load_trace(_trace_lines()))
        assert "engines:" not in text
        assert "degradations:" not in text
