"""The tracer: span nesting, timing, JSONL schema, no-op default."""

import io
import json
import time

import pytest

from repro import obs
from repro.obs.tracer import NULL_SPAN, SCHEMA_VERSION, Tracer


@pytest.fixture(autouse=True)
def _clean_obs():
    obs.reset()
    yield
    obs.reset()


def _records(sink: io.StringIO) -> list[dict]:
    return [json.loads(line) for line in sink.getvalue().splitlines()]


class TestSpans:
    def test_nesting_links_parent_ids(self):
        sink = io.StringIO()
        tracer = Tracer(sink, program="test")
        with tracer.span("outer") as outer:
            with tracer.span("inner") as inner:
                pass
        records = _records(sink)
        spans = {r["name"]: r for r in records if r["type"] == "span"}
        assert spans["inner"]["parent"] == outer.id
        assert spans["outer"]["parent"] is None
        assert inner.id != outer.id
        # Children close first, so they precede parents in the file.
        names = [r["name"] for r in records if r["type"] == "span"]
        assert names == ["inner", "outer"]

    def test_wall_time_contains_children(self):
        sink = io.StringIO()
        tracer = Tracer(sink)
        with tracer.span("outer"):
            with tracer.span("inner"):
                time.sleep(0.01)
        spans = {r["name"]: r for r in _records(sink) if r["type"] == "span"}
        assert spans["inner"]["wall_s"] >= 0.009
        assert spans["outer"]["wall_s"] >= spans["inner"]["wall_s"]

    def test_events_attach_to_innermost_span(self):
        sink = io.StringIO()
        tracer = Tracer(sink)
        tracer.event("orphan")
        with tracer.span("outer") as outer:
            with tracer.span("inner") as inner:
                tracer.event("deep", k=1)
            outer.event("explicit")
        events = {r["name"]: r for r in _records(sink) if r["type"] == "event"}
        assert events["orphan"]["parent"] is None
        assert events["deep"]["parent"] == inner.id
        assert events["deep"]["attrs"] == {"k": 1}
        assert events["explicit"]["parent"] == outer.id

    def test_mid_span_attributes_and_errors(self):
        sink = io.StringIO()
        tracer = Tracer(sink)
        with pytest.raises(RuntimeError):
            with tracer.span("job", phase="setup") as sp:
                sp.set(items=3)
                raise RuntimeError("boom")
        (span,) = [r for r in _records(sink) if r["type"] == "span"]
        assert span["attrs"] == {
            "phase": "setup",
            "items": 3,
            "error": "RuntimeError",
        }


class TestSchema:
    """Record shapes are a contract with trace-summary and external
    tooling: key sets are pinned here and only grow with a schema bump."""

    def test_record_key_sets_are_stable(self):
        sink = io.StringIO()
        tracer = Tracer(sink, program="schema-test")
        with tracer.span("s", a=1):
            tracer.event("e")
        tracer.finish({"counters": {}, "gauges": {}, "histograms": {}})
        by_type = {r["type"]: r for r in _records(sink)}
        assert set(by_type) == {"meta", "span", "event", "metrics"}
        assert set(by_type["meta"]) == {
            "type", "schema", "pid", "program", "start_unix",
        }
        assert by_type["meta"]["schema"] == SCHEMA_VERSION
        assert set(by_type["span"]) == {
            "type", "id", "parent", "name", "t0", "wall_s", "cpu_s", "attrs",
        }
        assert set(by_type["event"]) == {"type", "name", "parent", "t", "attrs"}
        assert set(by_type["metrics"]) == {"type", "t", "snapshot"}

    def test_non_json_attrs_are_stringified(self):
        sink = io.StringIO()
        tracer = Tracer(sink)
        with tracer.span("s", where=complex(1, 2)):
            pass
        (span,) = [r for r in _records(sink) if r["type"] == "span"]
        assert span["attrs"]["where"] == "(1+2j)"


class TestModuleLevelLifecycle:
    def test_disabled_by_default_returns_the_null_span(self):
        assert not obs.enabled()
        assert obs.span("anything", k=1) is NULL_SPAN
        with obs.span("nested") as sp:
            sp.set(a=1)
            sp.event("e")
        obs.event("dropped")  # must not raise

    def test_configure_writes_and_shutdown_appends_snapshot(self, tmp_path):
        path = tmp_path / "t.jsonl"
        obs.configure(trace_path=str(path), program="unit")
        assert obs.enabled()
        with obs.span("top"):
            obs.get_metrics().counter("unit.count").inc(7)
        obs.shutdown()
        assert not obs.enabled()
        records = [json.loads(l) for l in path.read_text().splitlines()]
        assert [r["type"] for r in records] == ["meta", "span", "metrics"]
        assert records[-1]["snapshot"]["counters"]["unit.count"] == 7

    def test_reconfigure_closes_the_previous_sink(self, tmp_path):
        a, b = tmp_path / "a.jsonl", tmp_path / "b.jsonl"
        obs.configure(trace_path=str(a))
        obs.configure(trace_path=str(b))
        with obs.span("only-in-b"):
            pass
        obs.shutdown()
        assert "only-in-b" not in a.read_text()
        assert "only-in-b" in b.read_text()
