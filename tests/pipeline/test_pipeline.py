"""The unified compilation pipeline: stages, artifacts, caching, registries."""

import dataclasses

import pytest

from repro.codes import CODES, get_spec
from repro.pipeline import (
    MAPPINGS,
    SCHEDULES,
    ArtifactCache,
    StageError,
    UnknownNameError,
    compile_spec,
)

STAGE_ORDER = [
    "parse",
    "dependence",
    "uov-search",
    "mapping-select",
    "schedule-select",
    "lint",
    "execute",
    "codegen",
]


class TestCompile:
    @pytest.mark.parametrize("name", ["simple2d", "stencil5", "psm", "jacobi"])
    def test_every_registered_code_compiles_end_to_end(self, name):
        result = compile_spec(
            get_spec(name), lint=True, codegen=True, cache=ArtifactCache()
        )
        assert [r.name for r in result.records] == STAGE_ORDER
        assert result.artifact("dependence").ok
        assert result.artifact("schedule-select").legal
        assert result.artifact("execute").verified
        assert result.artifact("lint").max_severity == "info"

    def test_search_runs_when_spec_has_no_override(self):
        spec = dataclasses.replace(get_spec("stencil5"), uov=None)
        result = compile_spec(spec, execute=False, cache=ArtifactCache())
        uov = result.artifact("uov-search")
        assert uov.source == "search"
        assert uov.optimal
        assert tuple(uov.ov) == (2, 0)

    def test_uov_override_is_certified(self):
        result = compile_spec(
            get_spec("stencil5"), execute=False, cache=ArtifactCache()
        )
        assert result.artifact("uov-search").source == "override"

    def test_bad_uov_override_fails_in_uov_stage(self):
        spec = dataclasses.replace(get_spec("stencil5"), uov=(0, 1))
        with pytest.raises(StageError, match="not universal") as exc_info:
            compile_spec(spec, execute=False, cache=ArtifactCache())
        assert exc_info.value.stage == "uov-search"

    def test_illegal_schedule_fails_in_schedule_stage(self):
        spec = dataclasses.replace(get_spec("stencil5"), schedule="wavefront")
        with pytest.raises(StageError, match="violates") as exc_info:
            compile_spec(spec, execute=False, cache=ArtifactCache())
        assert exc_info.value.stage == "schedule-select"

    def test_missing_size_binding_is_a_value_error(self):
        spec = get_spec("stencil5")
        with pytest.raises(ValueError, match="size symbol"):
            compile_spec(spec, sizes={"T": 4}, cache=ArtifactCache())


class TestCaching:
    def test_unchanged_spec_hits_every_stage(self):
        cache = ArtifactCache()
        spec = get_spec("jacobi")
        first = compile_spec(spec, lint=True, codegen=True, cache=cache)
        assert first.stages_run == STAGE_ORDER
        second = compile_spec(spec, lint=True, codegen=True, cache=cache)
        assert second.stages_run == []
        assert second.cache_hits == STAGE_ORDER
        # Cached artifacts deserialise to equal values.
        for name in STAGE_ORDER:
            assert second.artifact(name) == first.artifact(name)

    def test_editing_schedule_invalidates_only_downstream_stages(self):
        cache = ArtifactCache()
        spec = get_spec("jacobi")
        compile_spec(spec, lint=True, codegen=True, cache=cache)
        edited = dataclasses.replace(spec, schedule="tiled", tile=(2, 4))
        result = compile_spec(edited, lint=True, codegen=True, cache=cache)
        assert result.cache_hits == [
            "parse", "dependence", "uov-search", "mapping-select",
        ]
        assert result.stages_run == [
            "schedule-select", "lint", "execute", "codegen",
        ]

    def test_editing_mapping_keeps_the_analysis_prefix(self):
        cache = ArtifactCache()
        spec = get_spec("jacobi")
        compile_spec(spec, cache=cache)
        edited = dataclasses.replace(spec, mapping="natural")
        result = compile_spec(edited, cache=cache)
        assert result.cache_hits == ["parse", "dependence", "uov-search"]
        assert result.stages_run[0] == "mapping-select"

    def test_editing_a_structural_field_invalidates_everything(self):
        cache = ArtifactCache()
        spec = get_spec("jacobi")
        compile_spec(spec, cache=cache)
        edited = dataclasses.replace(
            spec, costs={"flops": 7, "int_ops": 0, "branches": 0}
        )
        result = compile_spec(edited, cache=cache)
        assert result.cache_hits == []

    def test_notes_do_not_invalidate_structural_stages(self):
        # `notes` is a directive-level field: not part of any payload.
        cache = ArtifactCache()
        spec = get_spec("jacobi")
        compile_spec(spec, cache=cache)
        edited = dataclasses.replace(spec, notes="annotated")
        result = compile_spec(edited, cache=cache)
        assert result.stages_run == []

    def test_disk_cache_survives_a_fresh_cache_instance(self, tmp_path):
        spec = get_spec("simple2d")
        compile_spec(spec, cache=ArtifactCache(cache_dir=tmp_path))
        result = compile_spec(spec, cache=ArtifactCache(cache_dir=tmp_path))
        assert result.stages_run == []

    def test_corrupt_disk_entry_is_a_miss_not_a_crash(self, tmp_path):
        spec = get_spec("simple2d")
        compile_spec(spec, cache=ArtifactCache(cache_dir=tmp_path))
        for artifact_file in tmp_path.glob("*.json"):
            artifact_file.write_text("{not json")
        result = compile_spec(spec, cache=ArtifactCache(cache_dir=tmp_path))
        assert result.stages_run == STAGE_ORDER[:5] + ["execute"]


class TestRegistries:
    def test_unknown_code_suggests_close_match(self):
        with pytest.raises(UnknownNameError) as exc_info:
            CODES.get("stencil6")
        message = exc_info.value.args[0]
        assert message.startswith("unknown code 'stencil6'; one of")
        assert "did you mean 'stencil5'?" in message

    def test_unknown_name_error_is_a_key_error(self):
        with pytest.raises(KeyError, match="unknown mapping"):
            MAPPINGS.get("row-major")

    def test_schedule_registry_contents(self):
        assert {"lex", "interchange", "wavefront", "tiled"} <= set(
            SCHEDULES.names()
        )

    def test_mapping_registry_contents(self):
        assert {"natural", "ov", "ov-interleaved", "rolling-buffer"} <= set(
            MAPPINGS.names()
        )


class TestSymbolicCertificates:
    def test_uov_artifact_carries_symbolic_certificate(self):
        from repro.analysis.symcert import SymbolicCertificate

        result = compile_spec(get_spec("stencil5"))
        uov = result.artifact("uov-search")
        assert uov.certificate is not None
        assert uov.certificate["verdict"] == "universal"
        # The proof object round-trips and re-verifies from JSON alone.
        back = SymbolicCertificate.from_json(uov.certificate)
        assert back.verify()
        assert tuple(back.ov) == tuple(uov.ov)

    def test_hook_spec_still_gets_a_code_level_proof(self):
        """The psm spec's combine is an opaque hook, but the pipeline
        certifies at the program-IR level where the hook is irrelevant —
        so even the hook spec ships a parametric proof."""
        result = compile_spec(get_spec("psm"))
        cert = result.artifact("uov-search").certificate
        assert cert is not None
        assert cert["verdict"] == "universal"

    def test_warm_cache_serves_the_proof(self, tmp_path):
        compile_spec(
            get_spec("stencil5"), cache=ArtifactCache(cache_dir=tmp_path)
        )
        warm = compile_spec(
            get_spec("stencil5"), cache=ArtifactCache(cache_dir=tmp_path)
        )
        assert "uov-search" in warm.cache_hits
        cert = warm.artifact("uov-search").certificate
        assert cert is not None and cert["verdict"] == "universal"
