"""Budgets and graceful UOV degradation (DESIGN.md §12).

The paper's Theorem 2 makes the trivial UOV ``ov0 = sum(vi)`` universal
for every regular stencil, so a budgeted search can always answer — the
tests here pin the whole degradation contract: the reason taxonomy, the
certified fallback, the lint finding, and the obs counters.
"""

import dataclasses

import pytest

from repro import obs
from repro.analysis.certify import UOVCertificate, certify
from repro.codes import get_spec
from repro.core.search import find_optimal_uov, find_uov_with_fallback
from repro.core.stencil import Stencil
from repro.pipeline import ArtifactCache, compile_spec
from repro.resilience.budget import Budget, BudgetMeter, Degradation, rss_mb
from repro.resilience.faults import FaultPlan, install_plan


class TestBudget:
    def test_unlimited_by_default(self):
        assert Budget().unlimited
        assert not Budget(max_nodes=10).unlimited

    def test_negative_limits_rejected(self):
        with pytest.raises(ValueError, match="must be >= 0"):
            Budget(wall_s=-1.0)

    def test_json_round_trip(self):
        budget = Budget(wall_s=1.5, max_nodes=100, memory_mb=512.0)
        assert Budget.from_json(budget.to_json()) == budget

    def test_meter_node_budget_trips_exactly(self):
        meter = Budget(max_nodes=5).start()
        assert meter.check(nodes=4) is None
        assert meter.check(nodes=5) == "node-budget"
        # A tripped meter stays tripped.
        assert meter.check(nodes=0) == "node-budget"

    def test_meter_wall_budget_trips(self):
        meter = Budget(wall_s=0.0).start()
        assert meter.check() == "wall-budget"

    def test_meter_memory_watermark_trips(self):
        peak = rss_mb()
        if peak is None:
            pytest.skip("no RSS watermark on this platform")
        meter = Budget(memory_mb=peak / 2).start()
        assert meter.check() == "memory-budget"

    def test_meter_amortises_expensive_polls(self):
        meter = Budget(wall_s=3600.0).start()
        for _ in range(BudgetMeter.CHECK_EVERY):
            assert meter.check() is None


class TestDegradedSearch:
    def test_node_budget_returns_certified_trivial_uov(self, stencil5):
        result = find_optimal_uov(stencil5, budget=Budget(max_nodes=1))
        assert not result.optimal
        d = result.degradation
        assert d is not None and d.reason == "node-budget"
        assert d.fallback == "initial-uov"
        assert result.ov == stencil5.initial_uov
        cert = certify(result.ov, stencil5)
        assert isinstance(cert, UOVCertificate) and cert.verify()

    def test_wall_budget_degrades_the_same_way(self, stencil5):
        result = find_optimal_uov(stencil5, budget=Budget(wall_s=0.0))
        assert not result.optimal
        assert result.degradation.reason == "wall-budget"
        cert = certify(result.ov, stencil5)
        assert isinstance(cert, UOVCertificate) and cert.verify()

    def test_generous_budget_changes_nothing(self, stencil5):
        free = find_optimal_uov(stencil5)
        bounded = find_optimal_uov(
            stencil5, budget=Budget(wall_s=3600.0, max_nodes=10**6)
        )
        assert bounded.ov == free.ov and bounded.optimal
        assert bounded.degradation is None

    def test_max_nodes_composes_with_budget_as_min(self, stencil5):
        result = find_optimal_uov(
            stencil5, max_nodes=1, budget=Budget(max_nodes=10**6)
        )
        assert not result.optimal
        assert result.nodes_visited == 1

    def test_partial_search_keeps_best_incumbent(self):
        # Enough nodes to improve on ov0 = (5, 0) but not to finish.
        stencil = Stencil([(1, -2), (1, -1), (1, 0), (1, 1), (1, 2)])
        result = find_optimal_uov(stencil, budget=Budget(max_nodes=200))
        cert = certify(result.ov, stencil)
        assert isinstance(cert, UOVCertificate) and cert.verify()
        if not result.optimal:
            assert result.degradation.nodes_explored == result.nodes_visited

    def test_degradation_counters_fire(self, stencil5):
        obs.reset_metrics()
        with pytest.warns(UserWarning, match="degraded gracefully"):
            find_optimal_uov(stencil5, budget=Budget(max_nodes=1))
        counters = obs.get_metrics().snapshot()["counters"]
        assert counters["resilience.degradations"] == 1
        assert counters["resilience.degradations.node-budget"] == 1


class TestCrashFallback:
    def test_injected_crash_falls_back_to_trivial_uov(self, stencil5):
        install_plan(FaultPlan.from_spec("search.node:crash"))
        result = find_uov_with_fallback(stencil5)
        assert result.ov == stencil5.initial_uov
        assert result.degradation.reason == "crash"
        assert result.degradation.fallback == "initial-uov"
        assert "InjectedCrash" in result.degradation.detail
        cert = certify(result.ov, stencil5)
        assert isinstance(cert, UOVCertificate) and cert.verify()

    def test_no_fault_means_no_degradation(self, stencil5):
        result = find_uov_with_fallback(stencil5)
        assert result.optimal and result.degradation is None

    def test_degradation_json_round_trip(self):
        d = Degradation(
            reason="crash",
            detail="boom",
            nodes_explored=7,
            fallback="initial-uov",
            data={"x": 1},
        )
        assert Degradation.from_json(d.to_json()) == d


class TestPipelineDegradation:
    def test_budgeted_compile_degrades_and_lints(self):
        spec = dataclasses.replace(get_spec("stencil5"), uov=None)
        with pytest.warns(UserWarning, match="degraded gracefully"):
            result = compile_spec(
                spec,
                lint=True,
                execute=True,
                cache=ArtifactCache(),
                search_budget=Budget(max_nodes=1),
            )
        uov = result.artifact("uov-search")
        assert not uov.optimal
        assert uov.degradation["reason"] == "node-budget"
        # The degraded UOV still compiles, schedules, and verifies
        # bit-for-bit against the reference execution.
        assert result.artifact("execute").verified
        findings = result.artifact("lint").findings
        codes = {f["code"] for f in findings}
        assert "RES001" in codes
        (finding,) = [f for f in findings if f["code"] == "RES001"]
        assert finding["severity"] == "warning"

    def test_budget_is_part_of_the_cache_key(self):
        spec = dataclasses.replace(get_spec("stencil5"), uov=None)
        cache = ArtifactCache()
        with pytest.warns(UserWarning):
            compile_spec(
                spec,
                execute=False,
                cache=cache,
                search_budget=Budget(max_nodes=1),
            )
        # A different budget must not hit the degraded entry.
        full = compile_spec(spec, execute=False, cache=cache)
        uov = full.artifact("uov-search")
        assert "uov-search" in full.stages_run
        assert uov.optimal and uov.degradation is None
