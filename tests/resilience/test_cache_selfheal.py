"""Self-healing caches: digests, quarantine, atomic writes.

Both on-disk caches (the harness's simulation-result cache and the
pipeline's ArtifactCache) must detect a corrupted entry on read, move it
to ``.corrupt/``, recompute a bit-identical replacement, and keep going.
"""

import dataclasses
import json

import pytest

from repro import obs
from repro.codes import get_spec, get_version
from repro.experiments.harness import SimTask, SimulationRunner
from repro.machine.configs import PENTIUM_PRO
from repro.pipeline import ArtifactCache, compile_spec
from repro.resilience.cachesafe import (
    CORRUPT_DIR,
    atomic_write_json,
    body_digest,
    read_verified_json,
)
from repro.resilience.faults import FaultPlan, install_plan

SIZES = {"T": 4, "L": 12}
MACHINE = PENTIUM_PRO.scaled(64)


class TestPrimitives:
    def test_write_read_round_trip(self, tmp_path):
        path = tmp_path / "entry.json"
        body = {"a": [1, 2, 3], "b": "x"}
        atomic_write_json(path, body)
        assert read_verified_json(path, site="t") == body
        wrapper = json.loads(path.read_text())
        assert wrapper["digest"] == body_digest(body)

    def test_missing_file_is_a_silent_miss(self, tmp_path):
        assert read_verified_json(tmp_path / "absent.json", site="t") is None
        assert not (tmp_path / CORRUPT_DIR).exists()

    @pytest.mark.parametrize(
        "corruption",
        [
            "{not json",
            '{"schema": 1, "body": {}}',  # no digest
            '{"schema": 99, "digest": "x", "body": {}}',  # wrong schema
            '{"schema": 1, "digest": "0000", "body": {"a": 1}}',  # mismatch
            '"just a string"',
        ],
    )
    def test_every_corruption_class_quarantines(self, tmp_path, corruption):
        path = tmp_path / "entry.json"
        path.write_text(corruption)
        with pytest.warns(UserWarning, match="corrupt cache entry"):
            assert read_verified_json(path, site="t") is None
        assert not path.exists()
        assert (tmp_path / CORRUPT_DIR / "entry.json").read_text() == corruption

    def test_no_tmp_droppings_after_write(self, tmp_path):
        path = tmp_path / "entry.json"
        atomic_write_json(path, {"k": 1})
        leftovers = [p.name for p in tmp_path.iterdir() if p.name != path.name]
        assert leftovers == []


class TestHarnessCacheHealing:
    def test_corrupt_entry_recomputed_bit_identical(self, tmp_path):
        task = SimTask.of(get_version("stencil5", "ov"), SIZES, MACHINE)
        first = SimulationRunner(cache_dir=tmp_path)
        first.run_tasks([task])
        (entry,) = tmp_path.glob("*.json")
        pristine = entry.read_bytes()
        entry.write_bytes(pristine[: len(pristine) // 2])
        healed = SimulationRunner(cache_dir=tmp_path)
        with pytest.warns(UserWarning, match="quarantined"):
            healed.run_tasks([task])
        assert healed.simulated == 1  # the miss was recomputed...
        assert entry.read_bytes() == pristine  # ...bit-identical
        assert (tmp_path / CORRUPT_DIR / entry.name).exists()

    def test_injected_corruption_heals_end_to_end(self, tmp_path):
        cache = tmp_path / "cache"
        install_plan(FaultPlan.from_spec("harness.cache.store:corrupt"))
        task = SimTask.of(get_version("stencil5", "ov"), SIZES, MACHINE)
        writer = SimulationRunner(cache_dir=cache)
        (clean,) = writer.run_tasks([task])
        reader = SimulationRunner(cache_dir=cache)
        with pytest.warns(UserWarning, match="quarantined"):
            (recomputed,) = reader.run_tasks([task])
        assert reader.simulated == 1 and recomputed == clean
        # Third run: the healed entry hits cleanly.
        third = SimulationRunner(cache_dir=cache)
        (hit,) = third.run_tasks([task])
        assert third.cache_hits == 1 and hit == clean

    def test_corrupt_counter_fires(self, tmp_path):
        task = SimTask.of(get_version("stencil5", "ov"), SIZES, MACHINE)
        SimulationRunner(cache_dir=tmp_path).run_tasks([task])
        (entry,) = tmp_path.glob("*.json")
        entry.write_text("junk")
        obs.reset()
        with pytest.warns(UserWarning):
            SimulationRunner(cache_dir=tmp_path).run_tasks([task])
        counters = obs.get_metrics().snapshot()["counters"]
        assert counters["resilience.cache.corrupt"] == 1


class TestPipelineCacheHealing:
    def test_corrupt_artifact_recomputed_bit_identical(self, tmp_path):
        spec = dataclasses.replace(get_spec("stencil5"), uov=None)
        compile_spec(spec, execute=False, cache=ArtifactCache(tmp_path))
        target = next(tmp_path.glob("uov-search-*.json"))
        pristine = target.read_bytes()
        target.write_text("{torn")
        fresh = ArtifactCache(tmp_path)  # new memory layer: disk is read
        with pytest.warns(UserWarning, match="quarantined"):
            result = compile_spec(spec, execute=False, cache=fresh)
        assert "uov-search" in result.stages_run
        assert target.read_bytes() == pristine
        assert (tmp_path / CORRUPT_DIR / target.name).exists()

    def test_injected_corruption_on_store(self, tmp_path):
        spec = dataclasses.replace(get_spec("stencil5"), uov=None)
        install_plan(
            FaultPlan.from_spec("pipeline.cache.store:corrupt:match=parse")
        )
        compile_spec(spec, execute=False, cache=ArtifactCache(tmp_path))
        with pytest.warns(UserWarning, match="quarantined"):
            result = compile_spec(
                spec, execute=False, cache=ArtifactCache(tmp_path)
            )
        assert "parse" in result.stages_run  # healed by recomputation
        third = compile_spec(spec, execute=False, cache=ArtifactCache(tmp_path))
        assert third.stages_run == []  # fully healed: everything hits

    def test_atomic_writes_leave_no_tmp_files(self, tmp_path):
        spec = get_spec("stencil5")
        compile_spec(spec, execute=False, cache=ArtifactCache(tmp_path))
        assert not list(tmp_path.glob("*.tmp"))
