"""JSONL checkpointing: a killed run resumes with zero redundant work."""

import json

import pytest

from repro.codes import get_version
from repro.experiments.harness import (
    SimTask,
    SimulationRunner,
    engine_fingerprint,
)
from repro.machine.configs import PENTIUM_PRO
from repro.resilience.checkpoint import (
    Checkpoint,
    CheckpointWriter,
    load_checkpoint,
)
from repro.resilience.quarantine import QuarantineRecord

MACHINE = PENTIUM_PRO.scaled(64)


def make_tasks(lengths=(8, 12, 16)):
    version = get_version("stencil5", "ov")
    return [
        SimTask.of(version, {"T": 4, "L": length}, MACHINE)
        for length in lengths
    ]


class TestCheckpointFile:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "ckpt.jsonl"
        with CheckpointWriter(path, meta={"engine": "abc"}) as writer:
            writer.record_result("k1", "task one", {"cycles": 1})
            writer.record_result("k2", "task two", {"cycles": 2})
            writer.record_quarantine(
                QuarantineRecord(
                    site="harness.worker",
                    identity={"code": "x"},
                    error="crash",
                    message="boom",
                    attempts=3,
                )
            )
        loaded = load_checkpoint(path)
        assert loaded.meta["engine"] == "abc"
        assert loaded.results == {"k1": {"cycles": 1}, "k2": {"cycles": 2}}
        (q,) = loaded.quarantines
        assert q.error == "crash" and q.attempts == 3

    def test_missing_file_is_empty(self, tmp_path):
        checkpoint = load_checkpoint(tmp_path / "absent.jsonl")
        assert isinstance(checkpoint, Checkpoint) and len(checkpoint) == 0

    def test_torn_final_line_is_tolerated(self, tmp_path):
        path = tmp_path / "ckpt.jsonl"
        with CheckpointWriter(path) as writer:
            writer.record_result("k1", "one", {"v": 1})
        with open(path, "a") as fh:
            fh.write('{"type": "result", "key": "k2", "res')  # SIGKILL here
        loaded = load_checkpoint(path)
        assert loaded.results == {"k1": {"v": 1}}

    def test_bad_json_mid_file_raises(self, tmp_path):
        path = tmp_path / "ckpt.jsonl"
        path.write_text('{"type": "meta"}\n{broken\n{"type": "result"}\n')
        with pytest.raises(ValueError, match="line 2"):
            load_checkpoint(path)

    def test_appending_does_not_duplicate_meta(self, tmp_path):
        path = tmp_path / "ckpt.jsonl"
        CheckpointWriter(path, meta={"engine": "x"}).close()
        CheckpointWriter(path, meta={"engine": "x"}).close()
        rows = [json.loads(line) for line in path.read_text().splitlines()]
        assert sum(r["type"] == "meta" for r in rows) == 1


class TestResume:
    def test_interrupted_run_resumes_with_zero_redundant_sims(self, tmp_path):
        ckpt = tmp_path / "ckpt.jsonl"
        tasks = make_tasks()

        # "Interrupted" run: only the first two tasks completed.
        partial = SimulationRunner(checkpoint_path=ckpt)
        first = partial.run_tasks(tasks[:2])
        partial.close()  # the kill; the JSONL survives

        resumed = SimulationRunner(checkpoint_path=ckpt, resume=True)
        full = resumed.run_tasks(tasks)
        resumed.close()
        assert resumed.simulated == 1  # only the task the kill interrupted
        assert resumed.resumed == 2
        assert full[:2] == first

    def test_full_resume_simulates_nothing(self, tmp_path):
        ckpt = tmp_path / "ckpt.jsonl"
        tasks = make_tasks()
        writer = SimulationRunner(checkpoint_path=ckpt)
        baseline = writer.run_tasks(tasks)
        writer.close()

        resumed = SimulationRunner(checkpoint_path=ckpt, resume=True)
        replayed = resumed.run_tasks(tasks)
        resumed.close()
        assert resumed.simulated == 0
        assert resumed.resumed == len(tasks)
        assert replayed == baseline

    def test_resume_works_without_a_result_cache(self, tmp_path):
        # --no-cache --checkpoint: the CI chaos smoke relies on this.
        ckpt = tmp_path / "ckpt.jsonl"
        tasks = make_tasks()
        writer = SimulationRunner(cache_dir=None, checkpoint_path=ckpt)
        writer.run_tasks(tasks)
        writer.close()
        resumed = SimulationRunner(
            cache_dir=None, checkpoint_path=ckpt, resume=True
        )
        resumed.run_tasks(tasks)
        assert resumed.simulated == 0 and resumed.resumed == len(tasks)

    def test_fresh_run_discards_stale_checkpoint(self, tmp_path):
        ckpt = tmp_path / "ckpt.jsonl"
        tasks = make_tasks(lengths=(8,))
        writer = SimulationRunner(checkpoint_path=ckpt)
        writer.run_tasks(tasks)
        writer.close()
        # No --resume: the next run must not inherit the records.
        fresh = SimulationRunner(checkpoint_path=ckpt)
        fresh.run_tasks(tasks)
        fresh.close()
        assert fresh.simulated == 1 and fresh.resumed == 0

    def test_stale_engine_checkpoint_contributes_nothing(self, tmp_path):
        ckpt = tmp_path / "ckpt.jsonl"
        (task,) = make_tasks(lengths=(8,))
        with CheckpointWriter(ckpt, meta={"engine": "stale"}) as writer:
            writer.record_result(
                "0" * 64, task.label, {"cycles": -1}  # key of a dead engine
            )
        resumed = SimulationRunner(checkpoint_path=ckpt, resume=True)
        (result,) = resumed.run_tasks([task])
        resumed.close()
        assert resumed.simulated == 1 and resumed.resumed == 0
        assert result.cycles_per_iteration > 0

    def test_resume_after_torn_line_still_works(self, tmp_path):
        ckpt = tmp_path / "ckpt.jsonl"
        tasks = make_tasks(lengths=(8, 12))
        writer = SimulationRunner(checkpoint_path=ckpt)
        writer.run_tasks(tasks)
        writer.close()
        with open(ckpt, "a") as fh:
            fh.write('{"type": "result", "key"')  # torn by the kill
        resumed = SimulationRunner(checkpoint_path=ckpt, resume=True)
        resumed.run_tasks(tasks)
        assert resumed.simulated == 0 and resumed.resumed == 2

    def test_checkpoint_meta_records_engine(self, tmp_path):
        ckpt = tmp_path / "ckpt.jsonl"
        runner = SimulationRunner(checkpoint_path=ckpt)
        runner.run_tasks(make_tasks(lengths=(8,)))
        runner.close()
        assert load_checkpoint(ckpt).meta["engine"] == engine_fingerprint()

    def test_quarantines_reach_the_checkpoint(self, tmp_path):
        from repro.resilience.faults import FaultPlan, install_plan

        ckpt = tmp_path / "ckpt.jsonl"
        install_plan(FaultPlan.from_spec("harness.worker:crash:times=10"))
        runner = SimulationRunner(checkpoint_path=ckpt)
        runner.run_tasks(make_tasks(lengths=(8,)), strict=False)
        runner.close()
        (record,) = load_checkpoint(ckpt).quarantines
        assert record.identity["code"] == "stencil5"
