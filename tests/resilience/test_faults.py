"""The deterministic fault-injection framework itself."""

import os

import pytest

from repro.resilience.faults import (
    FaultPlan,
    FaultRule,
    InjectedCrash,
    InjectedTransient,
    active_plan,
    install_plan,
    maybe_corrupt,
    maybe_fault,
    reset_plan,
)


class TestSpecGrammar:
    def test_minimal_clause(self):
        rule = FaultRule.from_clause("harness.worker:crash")
        assert rule.site == "harness.worker" and rule.kind == "crash"
        assert rule.times == 1 and rule.after == 0 and rule.p == 1.0

    def test_full_clause_round_trips(self):
        clause = "harness.worker:kill:times=2,after=1,match=L=16,p=0.5,delay=9.0"
        rule = FaultRule.from_clause(clause)
        assert rule.times == 2 and rule.after == 1
        assert rule.match == "L=16" and rule.p == 0.5 and rule.delay == 9.0
        assert FaultRule.from_clause(rule.to_clause()) == rule

    def test_multi_clause_spec(self):
        plan = FaultPlan.from_spec(
            "harness.worker:transient;harness.cache.store:corrupt"
        )
        assert len(plan.rules) == 2
        assert FaultPlan.from_spec(plan.spec()).spec() == plan.spec()

    def test_bad_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            FaultRule.from_clause("site:explode")

    def test_bad_option_rejected(self):
        with pytest.raises(ValueError, match="bad fault option"):
            FaultRule.from_clause("site:crash:bogus=1")

    def test_empty_spec_rejected(self):
        with pytest.raises(ValueError, match="no clauses"):
            FaultPlan.from_spec(" ; ")


class TestInjection:
    def test_fires_exactly_times(self):
        install_plan(FaultPlan.from_spec("s:transient:times=2"))
        for _ in range(2):
            with pytest.raises(InjectedTransient):
                maybe_fault("s")
        maybe_fault("s")  # exhausted: a no-op
        assert active_plan().injected("s") == 2

    def test_after_skips_leading_calls(self):
        install_plan(FaultPlan.from_spec("s:crash:after=2"))
        maybe_fault("s")
        maybe_fault("s")
        with pytest.raises(InjectedCrash):
            maybe_fault("s")

    def test_match_filters_by_label(self):
        install_plan(FaultPlan.from_spec("s:crash:match=L=16"))
        maybe_fault("s", label="L=24")  # no match: no fault
        with pytest.raises(InjectedCrash):
            maybe_fault("s", label="T=6,L=16")

    def test_site_mismatch_never_fires(self):
        install_plan(FaultPlan.from_spec("s:crash"))
        maybe_fault("other.site")

    def test_probability_is_deterministic_per_seed(self):
        def fired(seed):
            plan = FaultPlan.from_spec("s:crash:times=100,p=0.5", seed=seed)
            hits = []
            for i in range(20):
                try:
                    plan.fire("s")
                    hits.append(False)
                except InjectedCrash:
                    hits.append(True)
            return hits

        assert fired(1) == fired(1)  # same seed, same pattern
        assert fired(1) != fired(2)  # different seed, different pattern
        assert any(fired(1)) and not all(fired(1))

    def test_disarmed_is_a_noop(self):
        install_plan(None)
        maybe_fault("anything")
        assert not maybe_corrupt("anything", "/nonexistent")


class TestCrossProcessCounting:
    def test_sentinel_dir_claims_are_exclusive(self, tmp_path):
        spec = "s:transient:times=3"
        a = FaultPlan.from_spec(spec, scratch_dir=tmp_path)
        b = FaultPlan.from_spec(spec, scratch_dir=tmp_path)
        # Two "processes" share the scratch dir: 3 slots total, not 6.
        fires = 0
        for plan in (a, b, a, b, a, b):
            try:
                plan.fire("s")
            except InjectedTransient:
                fires += 1
        assert fires == 3
        assert a.injected() == b.injected() == 3

    def test_env_round_trip(self, tmp_path):
        plan = FaultPlan.from_spec(
            "s:kill:times=2", seed=7, scratch_dir=tmp_path
        )
        env: dict = {}
        plan.arm_env(env)
        clone = FaultPlan.from_env(env)
        assert clone.spec() == plan.spec()
        assert clone.seed == 7 and clone.scratch_dir == tmp_path

    def test_reset_plan_rearms_from_environment(self, tmp_path):
        plan = FaultPlan.from_spec("s:crash", scratch_dir=tmp_path)
        plan.arm_env(os.environ)
        install_plan(None)
        maybe_fault("s")  # installed None wins over the environment
        reset_plan()
        with pytest.raises(InjectedCrash):
            maybe_fault("s")


class TestCorruption:
    def test_corrupt_scribbles_deterministically(self, tmp_path):
        target = tmp_path / "entry.json"
        target.write_bytes(b"A" * 100)
        install_plan(FaultPlan.from_spec("store:corrupt"))
        assert maybe_corrupt("store", target)
        data = target.read_bytes()
        assert data == b"A" * 50 + b"\x00#injected-corruption"
        # times=1 exhausted: the next write is left alone.
        target.write_bytes(b"B" * 10)
        assert not maybe_corrupt("store", target)
        assert target.read_bytes() == b"B" * 10

    def test_injection_counter_reaches_metrics(self):
        from repro import obs

        install_plan(FaultPlan.from_spec("s:transient"))
        with pytest.raises(InjectedTransient):
            maybe_fault("s")
        counters = obs.get_metrics().snapshot()["counters"]
        assert counters["resilience.faults.injected"] == 1
