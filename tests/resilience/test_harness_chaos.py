"""Chaos suite for the fault-isolated simulation harness.

Every fault class the injector can produce — worker kill, crash
exception, transient exception, hang — is driven through the real
``SimulationRunner`` engines and must end in either a successful retry
or a quarantine that names the task, never a lost run.
"""

import os

import pytest

from repro.codes import get_version
from repro.experiments.harness import (
    SimTask,
    SimulationRunner,
    TaskFailure,
    task_identity,
)
from repro.machine.configs import PENTIUM_PRO
from repro.resilience.faults import FaultPlan, install_plan
from repro.resilience.retry import RetryPolicy

SIZES = {"T": 4, "L": 12}
MACHINE = PENTIUM_PRO.scaled(64)

#: Zero-backoff policy: chaos tests retry instantly.
FAST = RetryPolicy(retries=2, backoff_s=0.0, jitter=0.0)


@pytest.fixture
def task():
    return SimTask.of(get_version("stencil5", "ov"), SIZES, MACHINE)


def arm(spec: str, tmp_path, seed: int = 0) -> FaultPlan:
    """Install + env-arm a plan with cross-process sentinel counting."""
    plan = FaultPlan.from_spec(spec, seed=seed, scratch_dir=tmp_path / "faults")
    install_plan(plan)
    plan.arm_env()
    return plan


class TestRetryPolicy:
    def test_of_coercions(self):
        assert RetryPolicy.of(None).retries == 0
        assert RetryPolicy.of(3).retries == 3
        assert RetryPolicy.of(FAST) is FAST

    def test_backoff_grows_and_caps(self):
        policy = RetryPolicy(
            retries=5, backoff_s=1.0, multiplier=2.0, max_backoff_s=3.0,
            jitter=0.0,
        )
        assert [policy.delay(a) for a in range(4)] == [1.0, 2.0, 3.0, 3.0]

    def test_jitter_is_deterministic_per_key(self):
        policy = RetryPolicy(retries=1, backoff_s=1.0, jitter=0.5)
        assert policy.delay(0, "k") == policy.delay(0, "k")
        assert policy.delay(0, "k1") != policy.delay(0, "k2")

    def test_invalid_policies_rejected(self):
        with pytest.raises(ValueError):
            RetryPolicy(retries=-1)
        with pytest.raises(ValueError):
            RetryPolicy(jitter=1.5)


class TestTransientRecovery:
    def test_in_process_transient_is_retried_to_success(self, task, tmp_path):
        arm("harness.worker:transient:times=2", tmp_path)
        runner = SimulationRunner(retry=FAST)
        (result,) = runner.run_tasks([task])
        assert result is not None
        assert runner.simulated == 1
        assert runner.retries_used == 2
        assert not runner.quarantined

    def test_subprocess_transient_is_retried_to_success(self, task, tmp_path):
        arm("harness.worker:transient:times=1", tmp_path)
        runner = SimulationRunner(timeout_s=60.0, retry=FAST)
        (result,) = runner.run_tasks([task])
        assert result is not None
        assert runner.retries_used == 1 and not runner.quarantined

    def test_result_after_retries_matches_clean_run(self, task, tmp_path):
        clean = SimulationRunner().run_tasks([task])[0]
        arm("harness.worker:transient:times=1", tmp_path)
        retried = SimulationRunner(retry=FAST).run_tasks([task])[0]
        assert retried == clean


class TestCrashQuarantine:
    def test_worker_kill_is_retried_then_succeeds(self, task, tmp_path):
        # The worker dies twice without a traceback (os._exit); the
        # sentinel dir makes "twice" hold across replacement workers.
        arm("harness.worker:kill:times=2", tmp_path)
        runner = SimulationRunner(timeout_s=60.0, retry=FAST)
        (result,) = runner.run_tasks([task])
        assert result is not None
        assert runner.retries_used == 2 and not runner.quarantined

    def test_exhausted_retries_quarantine_with_identity(self, task, tmp_path):
        arm("harness.worker:crash:times=10", tmp_path)
        runner = SimulationRunner(retry=RetryPolicy(retries=1, backoff_s=0.0))
        with pytest.raises(TaskFailure) as exc_info:
            runner.run_tasks([task])
        (record,) = exc_info.value.quarantined
        assert record.identity == task_identity(task)
        assert record.identity["code"] == "stencil5"
        assert record.identity["mapping"] == "ov"
        assert record.identity["sizes"] == SIZES
        assert record.attempts == 2
        # The propagated error itself names the failing config.
        assert "stencil5" in str(exc_info.value)
        assert "mapping=ov" in str(exc_info.value)

    def test_non_strict_returns_none_for_quarantined(self, task, tmp_path):
        arm("harness.worker:crash:times=10", tmp_path)
        runner = SimulationRunner()  # no retries
        results = runner.run_tasks([task], strict=False)
        assert results == [None]
        assert len(runner.quarantined) == 1
        assert runner.quarantined[0].error == "exception"

    def test_one_poisoned_task_does_not_sink_the_batch(self, tmp_path):
        version = get_version("stencil5", "ov")
        tasks = [
            SimTask.of(version, {"T": 4, "L": length}, MACHINE)
            for length in (8, 12, 16)
        ]
        arm("harness.worker:crash:times=10,match=L=12", tmp_path)
        runner = SimulationRunner()
        results = runner.run_tasks(tasks, strict=False)
        assert results[0] is not None and results[2] is not None
        assert results[1] is None
        assert runner.simulated == 2

    def test_quarantine_counter_fires(self, task, tmp_path):
        from repro import obs

        arm("harness.worker:crash:times=10", tmp_path)
        SimulationRunner().run_tasks([task], strict=False)
        counters = obs.get_metrics().snapshot()["counters"]
        assert counters["resilience.quarantines"] == 1


class TestTimeout:
    def test_hung_worker_is_terminated_and_quarantined(self, task, tmp_path):
        arm("harness.worker:timeout:delay=60", tmp_path)
        runner = SimulationRunner(timeout_s=0.5)
        with pytest.raises(TaskFailure):
            runner.run_tasks([task])
        (record,) = runner.quarantined
        assert record.error == "timeout"
        assert "0.5" in record.message

    def test_hang_then_retry_succeeds(self, task, tmp_path):
        arm("harness.worker:timeout:times=1,delay=60", tmp_path)
        runner = SimulationRunner(timeout_s=1.0, retry=FAST)
        (result,) = runner.run_tasks([task])
        assert result is not None
        assert runner.retries_used == 1


class TestParallelChaos:
    def test_parallel_batch_with_faults_matches_clean_run(self, tmp_path):
        version = get_version("stencil5", "ov")
        tasks = [
            SimTask.of(version, {"T": 4, "L": length}, MACHINE)
            for length in (8, 12, 16, 20)
        ]
        clean = SimulationRunner(jobs=2).run_tasks(tasks)
        arm("harness.worker:kill:times=2", tmp_path)
        chaotic = SimulationRunner(jobs=2, retry=FAST).run_tasks(tasks)
        assert chaotic == clean

    def test_worker_pids_are_isolated(self, task, tmp_path):
        runner = SimulationRunner(timeout_s=60.0)
        runner.run_tasks([task])
        assert runner.workers and os.getpid() not in runner.workers
