"""Dependence-free batch enumeration behind the vectorized engine.

The contract (``Schedule.batches``): concatenating the yielded batches
reproduces ``schedule.order(bounds)`` *exactly*, and no batch contains
two points related by a stencil dependence.  Both halves are asserted
here for every schedule family; the vectorized engine's bit-exactness
rests on them.
"""

import itertools

import numpy as np
import pytest

from repro.core.stencil import Stencil
from repro.schedule import (
    InterchangedSchedule,
    LexicographicSchedule,
    SkewedSchedule,
    TiledSchedule,
    WavefrontSchedule,
)
from repro.schedule.batching import (
    prefix_batch_depth,
    prefix_batches,
    suffix_grid,
)

STENCIL5 = Stencil([(1, -2), (1, -1), (1, 0), (1, 1), (1, 2)])
PSM = Stencil([(1, 0), (0, 1), (1, 1)])
BOUNDS = [(1, 6), (-2, 4)]

BATCHABLE = [
    pytest.param(LexicographicSchedule(), STENCIL5, id="lex-stencil5"),
    pytest.param(
        InterchangedSchedule((1, 0)),
        Stencil([(0, 1)]),
        id="interchange-inner-dep",
    ),
    pytest.param(WavefrontSchedule((1, 1)), PSM, id="wavefront-psm"),
    pytest.param(
        WavefrontSchedule((2, 1), reverse_ties=True),
        PSM,
        id="wavefront-reverse-psm",
    ),
    pytest.param(TiledSchedule((3, 4)), STENCIL5, id="tiled-stencil5"),
    pytest.param(
        TiledSchedule((2, 3), skew=[[1, 0], [1, 1]]),
        STENCIL5,
        id="tiled-skewed-stencil5",
    ),
    pytest.param(
        SkewedSchedule([[1, 0], [1, 1]]), STENCIL5, id="skewed-stencil5"
    ),
]


def _depends(p, q, stencil):
    d = tuple(a - b for a, b in zip(p, q))
    return d in stencil.vectors or tuple(-c for c in d) in stencil.vectors


@pytest.mark.parametrize("schedule,stencil", BATCHABLE)
def test_concatenation_is_the_schedule_order(schedule, stencil):
    batches = schedule.batches(BOUNDS, stencil)
    assert batches is not None
    points = [tuple(int(c) for c in row) for b in batches for row in b]
    assert points == list(schedule.order(BOUNDS))


@pytest.mark.parametrize("schedule,stencil", BATCHABLE)
def test_no_intra_batch_dependence(schedule, stencil):
    for batch in schedule.batches(BOUNDS, stencil):
        pts = [tuple(int(c) for c in row) for row in batch]
        for p, q in itertools.combinations(pts, 2):
            assert not _depends(p, q, stencil), (p, q)


UNBATCHABLE = [
    pytest.param(LexicographicSchedule(), PSM, id="lex-psm"),
    pytest.param(InterchangedSchedule((1, 0)), PSM, id="interchange-psm"),
    pytest.param(
        WavefrontSchedule((1, 1)),
        Stencil([(1, -1)]),
        id="wavefront-zero-front",
    ),
    pytest.param(TiledSchedule((3, 3)), PSM, id="tiled-psm"),
]


@pytest.mark.parametrize("schedule,stencil", UNBATCHABLE)
def test_unbatchable_returns_none(schedule, stencil):
    assert schedule.batches(BOUNDS, stencil) is None


class TestPrefixDepth:
    def test_time_stencil_batches_along_space(self):
        # All distances advance axis 0, so fixing the first coordinate
        # leaves a dependence-free row.
        assert prefix_batch_depth(STENCIL5.vectors, 2) == 1

    def test_full_span_is_unbatchable(self):
        assert prefix_batch_depth(PSM.vectors, 2) is None

    def test_zero_distance_is_unbatchable(self):
        assert prefix_batch_depth([(0, 0)], 2) is None

    def test_3d_depth(self):
        assert prefix_batch_depth([(1, 0, 0), (1, 2, 0)], 3) == 1
        assert prefix_batch_depth([(1, 0, 0), (0, 1, 0)], 3) == 2
        assert prefix_batch_depth([(0, 0, 1)], 3) is None


class TestHelpers:
    def test_suffix_grid_is_lexicographic(self):
        grid = suffix_grid([range(0, 2), range(5, 8)])
        expected = list(itertools.product(range(0, 2), range(5, 8)))
        assert [tuple(r) for r in grid] == expected

    def test_suffix_grid_empty(self):
        grid = suffix_grid([])
        assert grid.shape == (1, 0)

    def test_prefix_batches_cover_box_in_lex_order(self):
        bounds = [(0, 2), (1, 3), (-1, 1)]
        batches = list(prefix_batches(bounds, 2))
        assert len(batches) == 3 * 3  # one batch per (i, j) prefix
        points = [tuple(r) for b in batches for r in b]
        assert points == [
            tuple(q)
            for q in itertools.product(
                range(0, 3), range(1, 4), range(-1, 2)
            )
        ]
        assert all(b.dtype == np.int64 for b in batches)
