"""Exhaustive schedule enumeration: the literal UOV quantifier."""

import itertools

import pytest

from repro.analysis.legality import is_schedule_legal
from repro.analysis.liveness import is_mapping_legal
from repro.core.stencil import Stencil
from repro.core.uov import enumerate_uovs, is_uov
from repro.mapping import OVMapping2D
from repro.schedule.exhaustive import all_legal_orders, count_legal_orders
from repro.util.polyhedron import Polytope


class TestEnumeration:
    def test_chain_has_one_order(self):
        s = Stencil([(1,)])
        assert count_legal_orders(s, [(0, 4)]) == 1

    def test_independent_points_are_permutations(self):
        # A dependence that never fits in the box: all orders legal.
        s = Stencil([(5, 0)])
        bounds = [(0, 1), (0, 1)]
        import math

        assert count_legal_orders(s, bounds) == math.factorial(4)

    def test_known_small_count(self, fig1_stencil):
        # 2x2 grid under {(1,0),(0,1),(1,1)}: (0,0) first, (1,1) last,
        # middle two free: exactly 2 orders.
        assert count_legal_orders(fig1_stencil, [(0, 1), (0, 1)]) == 2

    def test_every_order_is_legal_and_distinct(self, fig1_stencil):
        bounds = [(0, 1), (0, 2)]
        orders = list(all_legal_orders(fig1_stencil, bounds))
        assert len(orders) == count_legal_orders(fig1_stencil, bounds)
        seen = set()
        for order in orders:
            key = tuple(order)
            assert key not in seen
            seen.add(key)
            assert is_schedule_legal(order, fig1_stencil)
            assert sorted(order) == sorted(
                itertools.product(range(2), range(3))
            )

    def test_limit(self, fig1_stencil):
        orders = list(
            all_legal_orders(fig1_stencil, [(0, 2), (0, 2)], limit=5)
        )
        assert len(orders) == 5


class TestLiteralUniversality:
    """Discharge the 'for every legal schedule' quantifier exactly."""

    def test_uovs_survive_every_schedule(self, fig1_stencil):
        bounds = [(0, 2), (0, 2)]
        isg = Polytope.from_loop_bounds(bounds)
        uovs = enumerate_uovs(fig1_stencil, max_norm2=8)
        orders = list(all_legal_orders(fig1_stencil, bounds))
        assert len(orders) > 10  # the quantifier is not vacuous
        for ov in uovs:
            mapping = OVMapping2D(ov, isg)
            for order in orders:
                assert is_mapping_legal(mapping, fig1_stencil, order), (
                    f"UOV {ov} failed a legal schedule — "
                    "the membership test is unsound"
                )

    @pytest.mark.parametrize("ov", [(1, 0), (0, 1), (0, 2), (2, -1)])
    def test_non_uovs_fail_some_schedule(self, fig1_stencil, ov):
        bounds = [(0, 2), (0, 2)]
        isg = Polytope.from_loop_bounds(bounds)
        assert not is_uov(ov, fig1_stencil)
        mapping = OVMapping2D(ov, isg)
        failed = any(
            not is_mapping_legal(mapping, fig1_stencil, order)
            for order in all_legal_orders(fig1_stencil, bounds)
        )
        assert failed, (
            f"non-UOV {ov} survived every schedule of this box; "
            "box too small to witness, or membership too strict"
        )

    def test_5pt_uov_exact_on_tiny_box(self, stencil5):
        bounds = [(0, 2), (0, 2)]
        isg = Polytope.from_loop_bounds(bounds)
        orders = list(all_legal_orders(stencil5, bounds, limit=2000))
        mapping = OVMapping2D((2, 0), isg, layout="interleaved")
        assert all(
            is_mapping_legal(mapping, stencil5, order) for order in orders
        )
