"""Two-level tiling."""

import itertools

import pytest

from repro.analysis.legality import is_schedule_legal
from repro.analysis.liveness import is_mapping_legal
from repro.mapping import OVMapping2D
from repro.schedule import HierarchicalTiledSchedule, required_skew
from repro.util.polyhedron import Polytope


class TestCoverage:
    def test_permutation_of_box(self):
        sched = HierarchicalTiledSchedule((4, 4), (2, 2))
        bounds = [(0, 6), (0, 9)]
        points = list(sched.order(bounds))
        assert sorted(points) == sorted(
            itertools.product(range(7), range(10))
        )

    def test_with_skew(self, stencil5):
        sched = HierarchicalTiledSchedule(
            (8, 8), (2, 4), skew=required_skew(stencil5)
        )
        bounds = [(1, 6), (0, 11)]
        points = list(sched.order(bounds))
        assert sorted(points) == sorted(
            itertools.product(range(1, 7), range(12))
        )


class TestNesting:
    def test_inner_tiles_stay_within_outer(self):
        sched = HierarchicalTiledSchedule((4, 4), (2, 2))
        points = list(sched.order([(0, 7), (0, 7)]))
        # first outer tile = [0..3]x[0..3]: its 16 points come first
        first16 = set(points[:16])
        assert first16 == set(itertools.product(range(4), range(4)))
        # and its first inner tile is [0..1]x[0..1]
        assert set(points[:4]) == set(
            itertools.product(range(2), range(2))
        )

    def test_ragged_nesting_rejected(self):
        with pytest.raises(ValueError):
            HierarchicalTiledSchedule((4, 6), (2, 4))

    def test_bad_sizes(self):
        with pytest.raises(ValueError):
            HierarchicalTiledSchedule((0, 2), (1, 1))
        with pytest.raises(ValueError):
            HierarchicalTiledSchedule((4,), (2, 2))


class TestLegality:
    def test_legal_after_skew(self, stencil5):
        sched = HierarchicalTiledSchedule(
            (8, 8), (2, 4), skew=required_skew(stencil5)
        )
        bounds = [(1, 8), (0, 15)]
        assert sched.is_legal_for(stencil5, bounds)
        assert is_schedule_legal(sched.order(bounds), stencil5)

    def test_illegal_without_skew(self, stencil5):
        sched = HierarchicalTiledSchedule((4, 4), (2, 2))
        bounds = [(1, 8), (0, 15)]
        assert not sched.is_legal_for(stencil5, bounds)
        assert not is_schedule_legal(sched.order(bounds), stencil5)

    def test_uov_mapping_survives_hierarchical_tiling(self, stencil5):
        """The whole point: schedule independence covers multi-level
        tiling without any new analysis."""
        bounds = [(1, 8), (0, 15)]
        isg = Polytope.from_loop_bounds(bounds)
        sched = HierarchicalTiledSchedule(
            (8, 8), (2, 4), skew=required_skew(stencil5)
        )
        for layout in ("interleaved", "consecutive"):
            mapping = OVMapping2D((2, 0), isg, layout=layout)
            assert is_mapping_legal(
                mapping, stencil5, sched.order(bounds)
            )

    def test_rolling_buffer_does_not(self, stencil5):
        from repro.mapping import RollingBufferMapping

        bounds = [(1, 8), (0, 15)]
        isg = Polytope.from_loop_bounds(bounds)
        sched = HierarchicalTiledSchedule(
            (8, 8), (2, 4), skew=required_skew(stencil5)
        )
        rb = RollingBufferMapping(stencil5, isg)
        assert not is_mapping_legal(rb, stencil5, sched.order(bounds))
