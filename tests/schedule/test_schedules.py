"""Schedules: coverage, ordering, legality criteria."""

import itertools
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.stencil import Stencil
from repro.schedule import (
    InterchangedSchedule,
    LexicographicSchedule,
    SkewedSchedule,
    TiledSchedule,
    WavefrontSchedule,
    random_legal_order,
    required_skew,
    skew_matrix_2d,
)

ALL_SCHEDULES = [
    LexicographicSchedule(),
    InterchangedSchedule((1, 0)),
    SkewedSchedule([[1, 0], [1, 1]]),
    SkewedSchedule([[1, 0], [3, 1]]),
    WavefrontSchedule((1, 1)),
    WavefrontSchedule((2, 1), reverse_ties=True),
    TiledSchedule((2, 3)),
    TiledSchedule((3, 2), skew=[[1, 0], [2, 1]]),
    TiledSchedule((None, 4)),
]


class TestCoverage:
    """Every schedule must enumerate the box exactly once."""

    @pytest.mark.parametrize(
        "schedule", ALL_SCHEDULES, ids=lambda s: s.name
    )
    def test_permutation_of_box(self, schedule):
        bounds = [(1, 5), (-2, 4)]
        points = list(schedule.order(bounds))
        expected = set(
            itertools.product(range(1, 6), range(-2, 5))
        )
        assert len(points) == len(expected)
        assert set(points) == expected

    @settings(max_examples=20, deadline=None)
    @given(
        st.integers(0, 4),
        st.integers(0, 4),
        st.integers(1, 4),
        st.integers(1, 4),
    )
    def test_tiled_coverage_random_boxes(self, hi0, hi1, th, tw):
        schedule = TiledSchedule((th, tw), skew=[[1, 0], [1, 1]])
        bounds = [(0, hi0), (0, hi1)]
        points = list(schedule.order(bounds))
        assert sorted(points) == sorted(
            itertools.product(range(hi0 + 1), range(hi1 + 1))
        )


class TestOrdering:
    def test_interchange_runs_inner_axis_first(self):
        sched = InterchangedSchedule((1, 0))
        pts = list(sched.order([(0, 1), (0, 2)]))
        assert pts[:2] == [(0, 0), (1, 0)]  # j fixed, i advancing

    def test_wavefront_fronts_advance(self):
        sched = WavefrontSchedule((1, 1))
        pts = list(sched.order([(0, 2), (0, 2)]))
        sums = [a + b for a, b in pts]
        assert sums == sorted(sums)

    def test_wavefront_reverse_ties(self):
        fwd = list(WavefrontSchedule((1, 1)).order([(0, 2), (0, 2)]))
        rev = list(
            WavefrontSchedule((1, 1), reverse_ties=True).order(
                [(0, 2), (0, 2)]
            )
        )
        assert fwd != rev
        assert set(fwd) == set(rev)

    def test_tiles_are_contiguous(self):
        sched = TiledSchedule((2, 2))
        tiles = list(sched.tiles([(0, 3), (0, 3)]))
        assert len(tiles) == 4
        assert all(len(t) == 4 for t in tiles)
        # within a tile, points are within the tile box
        for tile in tiles:
            i0 = min(p[0] for p in tile)
            j0 = min(p[1] for p in tile)
            assert all(
                i0 <= p[0] <= i0 + 1 and j0 <= p[1] <= j0 + 1
                for p in tile
            )


class TestSkew:
    def test_skew_matrix_2d(self):
        assert skew_matrix_2d(2) == [[1, 0], [2, 1]]

    def test_required_skew_stencil5(self, stencil5):
        assert required_skew(stencil5) == [[1, 0], [2, 1]]

    def test_required_skew_identity_when_permutable(self, fig1_stencil):
        assert required_skew(fig1_stencil) == [[1, 0], [0, 1]]

    def test_required_skew_3d(self):
        s = Stencil([(1, 0, -1), (1, -1, 0), (0, 1, 0)])
        matrix = required_skew(s)
        from repro.util.intmath import matvec

        for v in s.vectors:
            assert all(c >= 0 for c in matvec(matrix, v))

    def test_required_skew_impossible(self):
        # A dimension with a negative component but no strictly positive
        # earlier dimension across the offenders.
        s = Stencil([(0, 1, -1), (1, 0, -1)])
        with pytest.raises(ValueError):
            required_skew(s)

    def test_skewed_schedule_legality(self, stencil5):
        sched = SkewedSchedule(skew_matrix_2d(2))
        assert sched.is_legal_for(stencil5, [(1, 4), (0, 9)])
        bad = SkewedSchedule(skew_matrix_2d(1))  # not enough skew
        # (1,-2) -> (1,-1): still lexicographically positive, so legal as
        # a sequential order (skewing never breaks lex-positivity with
        # positive factors on a positive leading dimension).
        assert bad.is_legal_for(stencil5, [(1, 4), (0, 9)])


class TestValidation:
    def test_bad_permutation(self):
        with pytest.raises(ValueError):
            InterchangedSchedule((0, 0))

    def test_bad_tile_size(self):
        with pytest.raises(ValueError):
            TiledSchedule((0, 2))

    def test_bounds_mismatch(self):
        with pytest.raises(ValueError):
            list(LexicographicSchedule().order([(2, 1)]))
        with pytest.raises(ValueError):
            list(InterchangedSchedule((1, 0)).order([(0, 1)]))
        with pytest.raises(ValueError):
            list(WavefrontSchedule((1, 1)).order([(0, 1)]))

    def test_non_unimodular_skew_rejected(self):
        with pytest.raises(ValueError):
            SkewedSchedule([[2, 0], [0, 1]])


class TestRandomLegalOrder:
    def test_is_always_legal(self, fig1_stencil):
        from repro.analysis.legality import is_schedule_legal

        rng = random.Random(3)
        for _ in range(10):
            order = random_legal_order(fig1_stencil, [(0, 4), (0, 4)], rng)
            assert is_schedule_legal(order, fig1_stencil)

    def test_produces_distinct_orders(self, fig1_stencil):
        rng = random.Random(4)
        orders = {
            tuple(random_legal_order(fig1_stencil, [(0, 3), (0, 3)], rng))
            for _ in range(10)
        }
        assert len(orders) > 1

    def test_covers_box(self, stencil5):
        rng = random.Random(5)
        order = random_legal_order(stencil5, [(1, 4), (0, 6)], rng)
        assert sorted(order) == sorted(
            itertools.product(range(1, 5), range(7))
        )
