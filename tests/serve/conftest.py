"""Serve-suite fixtures: every test starts and ends fault-free."""

from __future__ import annotations

import os

import pytest

from repro import obs
from repro.resilience.faults import ENV_DIR, ENV_SEED, ENV_SPEC, install_plan


@pytest.fixture(autouse=True)
def clean_faults():
    """No armed plan, no injection env vars, fresh metrics — both sides."""
    for var in (ENV_SPEC, ENV_SEED, ENV_DIR):
        os.environ.pop(var, None)
    install_plan(None)
    obs.reset()  # metrics + warn_once dedup keys
    yield
    install_plan(None)
    for var in (ENV_SPEC, ENV_SEED, ENV_DIR):
        os.environ.pop(var, None)
    obs.reset()


@pytest.fixture
def relax3_spec() -> dict:
    """A small, valid stencil spec body (examples/specs/relax3.json)."""
    import json
    from pathlib import Path

    root = Path(__file__).resolve().parents[2]
    return json.loads((root / "examples" / "specs" / "relax3.json").read_text())
