"""Admission control: token bucket, queue depth, structured sheds."""

import pytest

from repro.serve.admission import AdmissionGate


class FakeClock:
    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, s: float) -> None:
        self.now += s


class TestQueueDepth:
    def test_sheds_at_max_inflight_and_recovers_on_release(self):
        gate = AdmissionGate(rate_per_s=1000.0, burst=1000, max_inflight=2)
        assert gate.try_admit().admitted
        assert gate.try_admit().admitted
        shed = gate.try_admit()
        assert not shed.admitted
        assert shed.reason == "queue-depth"
        assert shed.retry_after_s > 0
        gate.release()
        assert gate.try_admit().admitted

    def test_release_never_goes_negative(self):
        gate = AdmissionGate(max_inflight=1)
        gate.release()
        gate.release()
        assert gate.inflight == 0
        assert gate.try_admit().admitted


class TestTokenBucket:
    def test_burst_then_rate_shed(self):
        clock = FakeClock()
        gate = AdmissionGate(
            rate_per_s=1.0, burst=2, max_inflight=100, clock=clock
        )
        assert gate.try_admit().admitted
        assert gate.try_admit().admitted
        shed = gate.try_admit()
        assert not shed.admitted and shed.reason == "rate"
        # retry_after names the time for one token at the sustained rate.
        assert shed.retry_after_s == pytest.approx(1.0, abs=0.05)

    def test_tokens_refill_with_time(self):
        clock = FakeClock()
        gate = AdmissionGate(
            rate_per_s=2.0, burst=1, max_inflight=100, clock=clock
        )
        assert gate.try_admit().admitted
        assert not gate.try_admit().admitted
        clock.advance(0.5)  # one token at 2/s
        assert gate.try_admit().admitted

    def test_refill_caps_at_burst(self):
        clock = FakeClock()
        gate = AdmissionGate(
            rate_per_s=10.0, burst=3, max_inflight=100, clock=clock
        )
        clock.advance(60.0)
        granted = sum(1 for _ in range(10) if gate.try_admit().admitted)
        assert granted == 3


class TestDecisions:
    def test_shed_counts_by_reason(self):
        gate = AdmissionGate(rate_per_s=1000.0, burst=1000, max_inflight=1)
        gate.try_admit()
        gate.try_admit()
        gate.try_admit()
        assert gate.shed == {"queue-depth": 2}

    def test_degradation_speaks_the_resilience_vocabulary(self):
        gate = AdmissionGate(rate_per_s=1000.0, burst=1000, max_inflight=1)
        gate.try_admit()
        decision = gate.try_admit()
        degradation = decision.degradation()
        assert degradation.reason == "queue-depth"
        assert degradation.fallback == "retry-after"
        assert degradation.data["retry_after_s"] > 0
        # Round-trips through the shared Degradation JSON schema.
        assert degradation.to_json()["reason"] == "queue-depth"

    def test_snapshot_shape(self):
        gate = AdmissionGate(rate_per_s=5.0, burst=7, max_inflight=3)
        gate.try_admit()
        snap = gate.snapshot()
        assert snap["inflight"] == 1
        assert snap["max_inflight"] == 3
        assert snap["burst"] == 7
        assert snap["admitted"] == 1

    def test_rejects_nonsense_limits(self):
        with pytest.raises(ValueError):
            AdmissionGate(rate_per_s=0.0)
        with pytest.raises(ValueError):
            AdmissionGate(max_inflight=0)
