"""The circuit-breaker state machine, driven by a fake clock."""

from repro.serve.breaker import (
    CLOSED,
    HALF_OPEN,
    OPEN,
    BreakerBoard,
    CircuitBreaker,
)


class FakeClock:
    def __init__(self) -> None:
        self.now = 100.0

    def __call__(self) -> float:
        return self.now

    def advance(self, s: float) -> None:
        self.now += s


def make(threshold=3, cooldown=30.0):
    clock = FakeClock()
    return CircuitBreaker(
        "test", failure_threshold=threshold, cooldown_s=cooldown, clock=clock
    ), clock


class TestStateMachine:
    def test_starts_closed_and_allows(self):
        breaker, _ = make()
        assert breaker.state == CLOSED
        assert breaker.allow()
        assert breaker.retry_after_s() == 0.0

    def test_opens_after_threshold_consecutive_failures(self):
        breaker, _ = make(threshold=3)
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == CLOSED
        breaker.record_failure()
        assert breaker.state == OPEN
        assert not breaker.allow()

    def test_success_resets_the_consecutive_count(self):
        breaker, _ = make(threshold=2)
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        assert breaker.state == CLOSED  # never two *consecutive* failures

    def test_retry_after_counts_down_the_cooldown(self):
        breaker, clock = make(threshold=1, cooldown=30.0)
        breaker.record_failure()
        assert breaker.retry_after_s() == 30.0
        clock.advance(12.0)
        assert breaker.retry_after_s() == 18.0

    def test_half_open_after_cooldown_hands_out_one_probe(self):
        breaker, clock = make(threshold=1, cooldown=30.0)
        breaker.record_failure()
        clock.advance(30.0)
        assert breaker.state == HALF_OPEN
        assert breaker.allow()  # the probe
        assert not breaker.allow()  # no second probe until an outcome

    def test_probe_success_closes(self):
        breaker, clock = make(threshold=1, cooldown=30.0)
        breaker.record_failure()
        clock.advance(30.0)
        assert breaker.allow()
        breaker.record_success()
        assert breaker.state == CLOSED
        assert breaker.allow()

    def test_probe_failure_reopens_with_fresh_cooldown(self):
        breaker, clock = make(threshold=1, cooldown=30.0)
        breaker.record_failure()
        clock.advance(30.0)
        assert breaker.allow()
        breaker.record_failure()
        assert breaker.state == OPEN
        assert breaker.retry_after_s() == 30.0  # fresh, not residual

    def test_transitions_are_counted(self):
        breaker, clock = make(threshold=1, cooldown=10.0)
        breaker.record_failure()
        clock.advance(10.0)
        assert breaker.allow()
        breaker.record_success()
        assert breaker.transitions == {
            "opened": 1,
            "half_open": 1,
            "closed": 1,
        }


class TestBreakerBoard:
    def test_same_key_same_breaker(self):
        board = BreakerBoard()
        assert board.breaker("a") is board.breaker("a")
        assert board.breaker("a") is not board.breaker("b")

    def test_snapshot_lists_only_tripped(self):
        board = BreakerBoard(failure_threshold=1)
        board.breaker("ok")
        board.breaker("bad").record_failure()
        snap = board.snapshot()
        assert snap["total"] == 2
        assert snap["by_state"][OPEN] == 1
        assert [b["name"] for b in snap["tripped"]] == ["bad"]

    def test_cap_evicts_oldest_closed_breaker(self):
        board = BreakerBoard(failure_threshold=1, max_breakers=2)
        board.breaker("first")
        board.breaker("tripped").record_failure()
        board.breaker("third")  # evicts "first" (closed), never "tripped"
        snap = board.snapshot()
        assert snap["total"] == 2
        assert snap["by_state"][OPEN] == 1
