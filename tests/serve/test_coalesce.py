"""Single-flight coalescing: one pipeline run per in-flight content hash."""

import asyncio

import pytest

from repro.serve.coalesce import Coalescer


def run(coro):
    return asyncio.run(coro)


class TestSingleFlight:
    def test_concurrent_identical_keys_run_once(self):
        async def scenario():
            coalescer = Coalescer()
            runs = 0
            release = asyncio.Event()

            async def thunk():
                nonlocal runs
                runs += 1
                await release.wait()
                return {"n": runs}

            leader = asyncio.create_task(coalescer.run("k", thunk))
            await asyncio.sleep(0)  # leader registers its flight
            followers = [
                asyncio.create_task(coalescer.run("k", thunk))
                for _ in range(5)
            ]
            await asyncio.sleep(0)
            release.set()
            outcomes = await asyncio.gather(leader, *followers)
            return runs, outcomes

        runs, outcomes = run(scenario())
        assert runs == 1  # the thunk ran exactly once
        results = [r for r, _ in outcomes]
        assert all(r == {"n": 1} for r in results)
        flags = [coalesced for _, coalesced in outcomes]
        assert flags.count(False) == 1  # exactly one leader
        assert flags.count(True) == 5

    def test_different_keys_do_not_coalesce(self):
        async def scenario():
            coalescer = Coalescer()

            async def thunk(value):
                await asyncio.sleep(0)
                return value

            a, b = await asyncio.gather(
                coalescer.run("a", lambda: thunk(1)),
                coalescer.run("b", lambda: thunk(2)),
            )
            return a, b

        (ra, ca), (rb, cb) = run(scenario())
        assert (ra, rb) == (1, 2)
        assert not ca and not cb

    def test_sequential_same_key_runs_twice(self):
        async def scenario():
            coalescer = Coalescer()
            runs = 0

            async def thunk():
                nonlocal runs
                runs += 1
                return runs

            first, _ = await coalescer.run("k", thunk)
            second, coalesced = await coalescer.run("k", thunk)
            return first, second, coalesced

        first, second, coalesced = run(scenario())
        assert (first, second) == (1, 2)
        assert not coalesced  # the first flight had already landed


class TestFailureSemantics:
    def test_leader_failure_propagates_to_followers(self):
        async def scenario():
            coalescer = Coalescer()
            release = asyncio.Event()

            async def thunk():
                await release.wait()
                raise RuntimeError("boom")

            leader = asyncio.create_task(coalescer.run("k", thunk))
            await asyncio.sleep(0)
            follower = asyncio.create_task(coalescer.run("k", thunk))
            await asyncio.sleep(0)
            release.set()
            with pytest.raises(RuntimeError):
                await leader
            with pytest.raises(RuntimeError):
                await follower
            return coalescer

        coalescer = run(scenario())
        assert coalescer.inflight() == 0

    def test_failure_is_not_latched(self):
        async def scenario():
            coalescer = Coalescer()
            attempts = 0

            async def flaky():
                nonlocal attempts
                attempts += 1
                if attempts == 1:
                    raise RuntimeError("first flight fails")
                return "ok"

            with pytest.raises(RuntimeError):
                await coalescer.run("k", flaky)
            result, coalesced = await coalescer.run("k", flaky)
            return result, coalesced

        result, coalesced = run(scenario())
        assert result == "ok" and not coalesced

    def test_snapshot_counts(self):
        async def scenario():
            coalescer = Coalescer()
            release = asyncio.Event()

            async def thunk():
                await release.wait()
                return 1

            leader = asyncio.create_task(coalescer.run("k", thunk))
            await asyncio.sleep(0)
            follower = asyncio.create_task(coalescer.run("k", thunk))
            await asyncio.sleep(0)
            mid = coalescer.snapshot()
            release.set()
            await asyncio.gather(leader, follower)
            return mid, coalescer.snapshot()

        mid, final = run(scenario())
        assert mid == {"inflight": 1, "leaders": 1, "coalesced": 1}
        assert final == {"inflight": 0, "leaders": 1, "coalesced": 1}
