"""Chaos tests against the *live* daemon: a real ``repro serve``
subprocess, real HTTP over localhost, and injected faults.

Determinism comes from the fault grammar, not from sleeps-and-hope:

* ``serve.worker:kill`` makes workers die mid-job (crash-only recovery),
* ``serve.worker:timeout:delay=N`` makes a job *slow* without failing
  (the lever for guaranteed coalescing / guaranteed overload),
* ``serve.toolchain:crash`` poisons the native toolchain (breaker
  degradation),

with ``REPRO_FAULTS_DIR`` giving cross-process ``times=`` accounting.
"""

import http.client
import json
import os
import signal
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

REPO = Path(__file__).resolve().parents[2]
SPEC = json.loads((REPO / "examples" / "specs" / "relax3.json").read_text())

BOOT_TIMEOUT_S = 60
REQUEST_TIMEOUT_S = 120


def daemon_env(tmp_path, faults=None, seed=0):
    env = os.environ.copy()
    env["PYTHONPATH"] = str(REPO / "src")
    env.pop("REPRO_FAULTS", None)
    env.pop("REPRO_FAULTS_SEED", None)
    env.pop("REPRO_FAULTS_DIR", None)
    if faults:
        env["REPRO_FAULTS"] = faults
        env["REPRO_FAULTS_SEED"] = str(seed)
        env["REPRO_FAULTS_DIR"] = str(tmp_path / "faults")
    return env


class Daemon:
    """Boot ``repro serve`` on an ephemeral port and wait for readiness."""

    def __init__(self, tmp_path, *extra_args, faults=None):
        self.cache = tmp_path / "cache.sqlite"
        self.proc = subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro",
                "serve",
                "--port",
                "0",
                "--cache-dir",
                str(self.cache),
                *extra_args,
            ],
            env=daemon_env(tmp_path, faults=faults),
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
        )
        self.port = self._await_ready()

    def _await_ready(self) -> int:
        deadline = time.monotonic() + BOOT_TIMEOUT_S
        lines = []
        while time.monotonic() < deadline:
            line = self.proc.stdout.readline()
            if not line:
                break
            lines.append(line)
            if "repro-serve listening on http://" in line:
                return int(line.rsplit(":", 1)[1])
        raise RuntimeError(f"daemon never became ready:\n{''.join(lines)}")

    def request(self, method, path, body=None, timeout=REQUEST_TIMEOUT_S):
        conn = http.client.HTTPConnection("127.0.0.1", self.port, timeout=timeout)
        try:
            payload = None if body is None else json.dumps(body)
            headers = {"content-type": "application/json"} if payload else {}
            conn.request(method, path, body=payload, headers=headers)
            response = conn.getresponse()
            raw = response.read()
            return response.status, dict(response.getheaders()), json.loads(raw)
        finally:
            conn.close()

    def stats(self):
        status, _, body = self.request("GET", "/stats")
        assert status == 200
        return body

    def stop(self, grace_s=30):
        if self.proc.poll() is None:
            self.proc.send_signal(signal.SIGTERM)
            try:
                self.proc.wait(timeout=grace_s)
            except subprocess.TimeoutExpired:
                self.proc.kill()
                self.proc.wait(timeout=10)
        return self.proc.returncode


@pytest.fixture
def start_daemon(tmp_path):
    daemons = []

    def factory(*extra_args, faults=None):
        d = Daemon(tmp_path, *extra_args, faults=faults)
        daemons.append(d)
        return d

    yield factory
    for d in daemons:
        d.stop(grace_s=10)


def compile_body(seed=0, engine="interpreter"):
    return {"spec": SPEC, "seed": seed, "engine": engine}


def post_in_thread(daemon, path, body, results, index):
    try:
        results[index] = daemon.request("POST", path, body)
    except Exception as exc:  # surfaced by the joining test
        results[index] = exc


def fan_out(daemon, bodies, path="/compile"):
    results = [None] * len(bodies)
    threads = [
        threading.Thread(
            target=post_in_thread, args=(daemon, path, body, results, i)
        )
        for i, body in enumerate(bodies)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=REQUEST_TIMEOUT_S)
    for r in results:
        if isinstance(r, Exception):
            raise r
        assert r is not None, "a client thread never completed"
    return results


class TestCrashOnlyRecovery:
    def test_worker_kills_yield_zero_500s_and_a_clean_store(
        self, start_daemon, tmp_path
    ):
        # Two kills land somewhere in the fan-out; in-app retries absorb
        # them, so every client still sees a 200.
        daemon = start_daemon(
            "--workers", "2", faults="serve.worker:kill:times=2,match=compile"
        )
        results = fan_out(
            daemon, [compile_body(seed=i) for i in range(6)]
        )
        for status, _, body in results:
            assert status == 200, body
            assert body["ok"] is True
            assert body["result"]["outputs_sha256"]
        stats = daemon.stats()
        assert stats["pool"]["restarts"] >= 1
        assert stats["counters"].get("serve.worker_restarts", 0) >= 1
        assert stats["counters"]["serve.requests"] >= 6
        assert daemon.stop() == 0

        # Integrity scan: every artifact the chaos run stored must load.
        from repro.store import Store

        with Store.open(daemon.cache) as store:
            keys = store.keys()
            assert keys, "the run should have populated the store"
            for key in keys:
                assert store.get(key) is not None


class TestCoalescing:
    def test_identical_concurrent_compiles_run_the_pipeline_once(
        self, start_daemon
    ):
        # The leader's worker job sleeps 1.5s (timeout fault = slow, not
        # dead), guaranteeing the followers arrive while it is in flight.
        daemon = start_daemon(
            "--workers",
            "2",
            faults="serve.worker:timeout:times=1,delay=1.5,match=compile",
        )
        body = compile_body(seed=7)
        results = [None] * 5

        leader = threading.Thread(
            target=post_in_thread, args=(daemon, "/compile", body, results, 0)
        )
        leader.start()
        time.sleep(0.5)  # well inside the 1.5s injected slowness
        followers = [
            threading.Thread(
                target=post_in_thread,
                args=(daemon, "/compile", body, results, i),
            )
            for i in range(1, 5)
        ]
        for t in followers:
            t.start()
        for t in [leader, *followers]:
            t.join(timeout=REQUEST_TIMEOUT_S)

        for r in results:
            if isinstance(r, Exception):
                raise r
        statuses = [r[0] for r in results]
        assert statuses == [200] * 5
        flags = [r[2]["coalesced"] for r in results]
        assert flags.count(False) == 1, flags  # exactly one leader
        assert flags.count(True) == 4, flags
        hashes = {r[2]["result"]["outputs_sha256"] for r in results}
        assert len(hashes) == 1  # everyone saw the same pipeline run
        stats = daemon.stats()
        assert stats["counters"]["serve.coalesced"] == 4
        assert stats["coalescer"]["leaders"] == 1


class TestOverload:
    def test_queue_depth_shed_is_a_structured_429(self, start_daemon):
        daemon = start_daemon(
            "--workers",
            "1",
            "--max-inflight",
            "1",
            faults="serve.worker:timeout:times=1,delay=2,match=compile",
        )
        slow = [None]
        t = threading.Thread(
            target=post_in_thread,
            args=(daemon, "/compile", compile_body(seed=1), slow, 0),
        )
        t.start()
        time.sleep(0.6)  # the slow request now owns the only slot
        status, headers, body = daemon.request(
            "POST", "/compile", compile_body(seed=2)
        )
        assert status == 429
        assert body["ok"] is False
        assert body["error"]["code"] == "overloaded"
        assert body["error"]["detail"]["reason"] == "queue-depth"
        assert body["error"]["retry_after_s"] > 0
        retry_after = {k.lower(): v for k, v in headers.items()}["retry-after"]
        assert int(retry_after) >= 1
        t.join(timeout=REQUEST_TIMEOUT_S)
        slow_status, _, slow_body = slow[0]
        assert slow_status == 200, slow_body  # the victim was never harmed
        stats = daemon.stats()
        assert stats["counters"]["serve.shed"] >= 1
        assert stats["counters"]["serve.shed.queue-depth"] >= 1


class TestToolchainDegradation:
    def test_breaker_rewrites_native_to_vectorized_truthfully(
        self, start_daemon
    ):
        # Every native job hits an injected toolchain crash. With a
        # threshold of 1 the first failure opens the breaker; the retry
        # reruns on the vectorized engine and says so.
        daemon = start_daemon(
            "--breaker-threshold",
            "1",
            "--crash-retries",
            "1",
            faults="serve.toolchain:crash",
        )
        status, _, body = daemon.request(
            "POST", "/compile", compile_body(seed=1, engine="native")
        )
        assert status == 200, body
        degradation = body["degradation"]
        assert degradation is not None
        assert degradation["reason"] == "toolchain-breaker-open"
        assert degradation["fallback"] == "vectorized-engine"
        # The vectorized engine may itself fall back to the interpreter
        # for this stencil; the contract is simply "never native".
        assert body["result"]["engine_used"] in ("vectorized", "interpreter")

        # While the breaker is open, later native requests degrade
        # immediately -- no failed dispatch, no 500.
        status, _, body = daemon.request(
            "POST", "/compile", compile_body(seed=2, engine="native")
        )
        assert status == 200, body
        assert body["degradation"]["reason"] == "toolchain-breaker-open"
        stats = daemon.stats()
        assert stats["breakers"]["toolchain"]["state"] == "open"


class TestGracefulDrain:
    def test_sigterm_finishes_inflight_work_then_exits_zero(
        self, start_daemon
    ):
        daemon = start_daemon(
            "--workers",
            "1",
            faults="serve.worker:timeout:times=1,delay=2,match=compile",
        )
        inflight = [None]
        t = threading.Thread(
            target=post_in_thread,
            args=(daemon, "/compile", compile_body(seed=3), inflight, 0),
        )
        t.start()
        time.sleep(0.6)  # the request is mid-job inside the worker
        daemon.proc.send_signal(signal.SIGTERM)

        # New work is refused while the old request keeps running.
        time.sleep(0.2)
        try:
            status, _, body = daemon.request(
                "POST", "/compile", compile_body(seed=4), timeout=5
            )
            assert status == 503
            assert body["error"]["code"] == "draining"
        except OSError:
            pass  # listener already closed: equally correct refusal

        t.join(timeout=REQUEST_TIMEOUT_S)
        status, _, body = inflight[0]
        assert status == 200, body  # the in-flight request was not dropped
        assert daemon.proc.wait(timeout=30) == 0
