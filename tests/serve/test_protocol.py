"""Request validation, canonicalisation, and content-hash identity."""

import pytest

from repro.serve.protocol import (
    ERROR_CODES,
    RequestError,
    ServeError,
    compile_request_key,
    error_body,
    experiment_request_key,
    normalize_compile_request,
    normalize_experiment_request,
    success_body,
)


class TestCompileRequests:
    def test_minimal_valid_request(self, relax3_spec):
        job = normalize_compile_request({"spec": relax3_spec})
        assert job["kind"] == "compile"
        assert job["engine"] == "interpreter"
        assert job["execute"] is True
        assert job["spec"]["name"] == "relax3"

    def test_rejects_non_object_body(self):
        with pytest.raises(RequestError):
            normalize_compile_request([1, 2, 3])

    def test_rejects_missing_spec(self):
        with pytest.raises(RequestError, match="'spec'"):
            normalize_compile_request({})

    def test_rejects_invalid_spec_with_diagnostics(self):
        with pytest.raises(RequestError, match="invalid spec"):
            normalize_compile_request({"spec": {"name": "nope"}})

    def test_rejects_unknown_engine(self, relax3_spec):
        with pytest.raises(RequestError, match="engine"):
            normalize_compile_request({"spec": relax3_spec, "engine": "gpu"})

    def test_rejects_bad_sizes(self, relax3_spec):
        with pytest.raises(RequestError, match="positive integer"):
            normalize_compile_request(
                {"spec": relax3_spec, "sizes": {"n": -1}}
            )
        with pytest.raises(RequestError, match="positive integer"):
            normalize_compile_request(
                {"spec": relax3_spec, "sizes": {"n": True}}
            )

    def test_rejects_unbound_size_symbols(self, relax3_spec):
        # A request-level sizes override must still bind every symbol.
        with pytest.raises(RequestError, match="size symbol"):
            normalize_compile_request(
                {"spec": relax3_spec, "sizes": {"n": 8}}
            )

    def test_rejects_bool_seed(self, relax3_spec):
        with pytest.raises(RequestError, match="seed"):
            normalize_compile_request({"spec": relax3_spec, "seed": True})


class TestExperimentRequests:
    def test_valid_request_defaults(self):
        job = normalize_experiment_request(
            {"code": "stencil5", "version": "ov", "sizes": {"T": 4, "L": 16}}
        )
        assert job["kind"] == "experiment"
        assert job["passes"] == 1 and job["seed"] == 0
        assert job["machine"]  # defaulted to the first registered machine

    def test_rejects_unknown_code(self):
        with pytest.raises(RequestError, match="unknown code"):
            normalize_experiment_request(
                {"code": "nope", "version": "ov", "sizes": {"T": 4}}
            )

    def test_rejects_unknown_version(self):
        with pytest.raises(RequestError, match="unknown version"):
            normalize_experiment_request(
                {"code": "stencil5", "version": "nope", "sizes": {"T": 4}}
            )

    def test_rejects_unknown_machine(self):
        with pytest.raises(RequestError, match="unknown machine"):
            normalize_experiment_request(
                {
                    "code": "stencil5",
                    "version": "ov",
                    "sizes": {"T": 4},
                    "machine": "cray-1",
                }
            )

    def test_rejects_empty_sizes(self):
        with pytest.raises(RequestError, match="sizes"):
            normalize_experiment_request(
                {"code": "stencil5", "version": "ov"}
            )


class TestRequestIdentity:
    def test_equal_work_hashes_equal(self, relax3_spec):
        a = normalize_compile_request({"spec": relax3_spec, "seed": 7})
        # Byte-different body (key order, explicit defaults), same work.
        b = normalize_compile_request(
            {"seed": 7, "engine": "interpreter", "spec": dict(relax3_spec)}
        )
        assert compile_request_key(a) == compile_request_key(b)

    def test_different_engine_hashes_differ(self, relax3_spec):
        a = normalize_compile_request({"spec": relax3_spec})
        b = normalize_compile_request(
            {"spec": relax3_spec, "engine": "vectorized"}
        )
        assert compile_request_key(a) != compile_request_key(b)

    def test_compile_and_experiment_never_collide(self, relax3_spec):
        compile_job = normalize_compile_request({"spec": relax3_spec})
        exp_job = normalize_experiment_request(
            {"code": "stencil5", "version": "ov", "sizes": {"T": 4, "L": 16}}
        )
        assert compile_request_key(compile_job) != experiment_request_key(
            exp_job
        )


class TestEnvelopes:
    def test_success_body_shape(self):
        body = success_body({"x": 1}, coalesced=True, cached=False)
        assert body == {
            "ok": True,
            "coalesced": True,
            "result": {"x": 1},
            "degradation": None,
            "cached": False,
        }

    def test_error_body_shape_and_codes(self):
        err = ServeError(
            "overloaded", "shed", retry_after_s=1.5, detail={"reason": "rate"}
        )
        body = error_body(err)
        assert body["ok"] is False
        assert body["error"]["code"] in ERROR_CODES
        assert body["error"]["retry_after_s"] == 1.5
        assert body["error"]["detail"] == {"reason": "rate"}
