"""The crash-only worker pool: crashes, timeouts, retirement, telemetry.

Uses cheap ``probe`` jobs plus the ``serve.worker`` fault site, so every
failure mode is deterministic and each test stays fast.
"""

import concurrent.futures
import threading
import time

import pytest

from repro import obs
from repro.resilience.faults import FaultPlan, install_plan
from repro.serve.workers import (
    JobFailed,
    WorkerCrash,
    WorkerPool,
    WorkerTimeout,
    execute_job,
)

PROBE = {"kind": "probe", "label": "probe"}


def arm(spec: str, tmp_path, seed: int = 0) -> FaultPlan:
    """Install + env-arm a plan with cross-process sentinel counting."""
    plan = FaultPlan.from_spec(spec, seed=seed, scratch_dir=tmp_path / "faults")
    install_plan(plan)
    plan.arm_env()
    return plan


@pytest.fixture
def make_pool():
    """Factory so tests can arm faults *before* the workers fork (workers
    copy the environment at fork time; arming afterwards is invisible)."""
    pools = []

    def factory(workers=2, deadline_s=None):
        pool = WorkerPool(workers=workers, deadline_s=deadline_s)
        pool.start()
        pools.append(pool)
        return pool

    yield factory
    for pool in pools:
        pool.shutdown(grace_s=2.0)


@pytest.fixture
def pool(make_pool):
    return make_pool()


class TestHappyPath:
    def test_probe_round_trips(self, pool):
        result = pool.submit(dict(PROBE)).result(timeout=30)
        assert isinstance(result["pid"], int)
        assert result["pid"] != 0

    def test_jobs_fan_out_and_all_complete(self, pool):
        futures = [pool.submit(dict(PROBE)) for _ in range(8)]
        pids = {f.result(timeout=30)["pid"] for f in futures}
        assert pids  # at least one worker served them
        assert pool.completed == 8
        assert pool.snapshot()["queued"] == 0

    def test_worker_metrics_ship_home(self, pool):
        pool.submit(dict(PROBE)).result(timeout=30)
        counters = obs.get_metrics().snapshot()["counters"]
        assert counters.get("serve.jobs.completed") == 1

    def test_unknown_kind_is_job_failure_not_crash(self, pool):
        with pytest.raises(JobFailed, match="unknown job kind"):
            pool.submit({"kind": "nope"}).result(timeout=30)
        assert pool.restarts == 0  # the worker survived


class TestCrashOnly:
    def test_injected_kill_is_a_crash_and_the_pool_recovers(
        self, make_pool, tmp_path
    ):
        arm("serve.worker:kill:times=1", tmp_path)
        pool = make_pool()
        with pytest.raises(WorkerCrash) as excinfo:
            pool.submit(dict(PROBE)).result(timeout=30)
        assert excinfo.value.exitcode == 113  # KILL_EXIT_CODE
        # The replacement worker serves the next job.
        assert pool.submit(dict(PROBE)).result(timeout=30)["pid"]
        assert pool.restarts == 1
        assert pool.crashes == 1

    def test_crash_exception_stays_in_the_worker(self, make_pool, tmp_path):
        arm("serve.worker:crash:times=1", tmp_path)
        pool = make_pool()
        with pytest.raises(JobFailed, match="serve.worker"):
            pool.submit(dict(PROBE)).result(timeout=30)
        assert pool.restarts == 0  # raised, reported, worker lives on
        assert pool.submit(dict(PROBE)).result(timeout=30)["pid"]

    def test_other_inflight_jobs_survive_a_crash(self, make_pool, tmp_path):
        # Exactly one kill, matched to one label: the poisoned job dies,
        # the healthy ones complete on their own workers.
        arm("serve.worker:kill:times=1,match=poison", tmp_path)
        pool = make_pool()
        poisoned = pool.submit({"kind": "probe", "label": "poison"})
        healthy = [
            pool.submit({"kind": "probe", "label": f"ok-{i}"})
            for i in range(4)
        ]
        with pytest.raises(WorkerCrash):
            poisoned.result(timeout=30)
        for future in healthy:
            assert future.result(timeout=30)["pid"]

    def test_idle_dead_worker_is_replaced_without_deadlock(self):
        # Regression: _dispatch used to call _replace while still holding
        # the pool lock (a non-reentrant Lock) when sending to an
        # idle-dead worker failed — wedging the scheduler thread forever.
        # Drive _dispatch directly against a pre-killed idle worker and
        # require it to return and respawn.
        pool = WorkerPool(workers=1)
        try:
            victim = pool._spawn()
            pool._workers.append(victim)
            victim.proc.kill()
            victim.proc.join()
            pool.submit(dict(PROBE))
            done = threading.Event()

            def run():
                pool._dispatch()
                done.set()

            thread = threading.Thread(target=run, daemon=True)
            thread.start()
            assert done.wait(20), "_dispatch deadlocked on an idle-dead worker"
            assert pool.restarts == 1
            assert victim not in pool._workers
            assert len(pool._workers) == 1  # the replacement
        finally:
            pool.shutdown(grace_s=0.2)

    def test_idle_crash_recovers_end_to_end(self, pool):
        # The scheduler route for the same failure: kill a worker while it
        # sits idle between jobs, then keep submitting — the pool must
        # keep serving (no wedge, no lost jobs).
        pids = {pool.submit(dict(PROBE)).result(timeout=30)["pid"]}
        victims = list(pool._workers)
        for worker in victims:
            worker.proc.kill()
        for worker in victims:
            worker.proc.join()  # fully dead before the next dispatch
        for _ in range(4):
            pids.add(pool.submit(dict(PROBE)).result(timeout=30)["pid"])
        assert pool.snapshot()["alive"] >= 1

    def test_deadline_reaps_a_wedged_worker(self, make_pool, tmp_path):
        arm("serve.worker:timeout:times=1,delay=60", tmp_path)
        pool = make_pool(workers=1, deadline_s=0.5)
        with pytest.raises(WorkerTimeout):
            pool.submit(dict(PROBE)).result(timeout=30)
        assert pool.timeouts == 1
        assert pool.restarts == 1
        # The replacement worker is live.
        assert pool.submit(dict(PROBE)).result(timeout=30)["pid"]


class TestShutdown:
    def test_shutdown_fails_pending_futures(self):
        pool = WorkerPool(workers=1)
        pool.start()
        future = pool.submit(dict(PROBE))
        future.result(timeout=30)
        pool.shutdown(grace_s=1.0)
        with pytest.raises(RuntimeError, match="shutting down"):
            pool.submit(dict(PROBE))

    def test_shutdown_grace_delivers_inflight_results(self, tmp_path):
        # Regression: setting _closing used to stop the scheduler loop
        # immediately, so a job that finished *during* the grace window
        # had no one to deliver its result — shutdown spun the full
        # grace, then failed an already-completed job with "pool shut
        # down".  Now the scheduler keeps draining while closing.
        arm("serve.worker:timeout:times=1,delay=0.4", tmp_path)
        pool = WorkerPool(workers=1)
        pool.start()
        try:
            slow = pool.submit(dict(PROBE))
            t0 = time.monotonic()
            pool.shutdown(grace_s=30.0)
            took = time.monotonic() - t0
            assert slow.result(timeout=5)["pid"]  # delivered, not discarded
            assert took < 10  # went idle after the job, not the full grace
        finally:
            pool.shutdown(grace_s=0.2)

    def test_shutdown_dispatches_queued_jobs_within_grace(self):
        # Jobs accepted before shutdown but not yet dispatched are still
        # run and delivered inside the grace window.
        pool = WorkerPool(workers=1)
        pool.start()
        try:
            futures = [pool.submit(dict(PROBE)) for _ in range(4)]
            pool.shutdown(grace_s=30.0)
            for future in futures:
                assert future.result(timeout=5)["pid"]
        finally:
            pool.shutdown(grace_s=0.2)

    def test_snapshot_shape(self, pool):
        snap = pool.snapshot()
        assert snap["size"] == 2
        assert set(snap) >= {
            "alive",
            "busy",
            "queued",
            "completed",
            "restarts",
            "crashes",
            "timeouts",
        }


class TestExecuteJob:
    """``execute_job`` runs in-process too (what the workers actually do)."""

    def test_compile_job(self, relax3_spec, tmp_path):
        from repro.serve.protocol import normalize_compile_request

        job = normalize_compile_request({"spec": relax3_spec})
        result = execute_job(job, str(tmp_path / "cache"))
        assert result["spec"] == "relax3"
        assert result["engine_used"] == "interpreter"
        assert [s["name"] for s in result["stages"]][:2] == [
            "parse",
            "dependence",
        ]
        assert result["outputs_sha256"]

    def test_experiment_job(self, tmp_path):
        from repro.serve.protocol import normalize_experiment_request

        job = normalize_experiment_request(
            {"code": "stencil5", "version": "ov", "sizes": {"T": 4, "L": 12}}
        )
        result = execute_job(job, None)
        assert result["task"].startswith("stencil5/ov")
        assert result["result"]["cycles_per_iteration"] > 0
