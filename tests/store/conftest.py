"""Store-suite fixtures: clean metrics, no armed faults, both backends."""

from __future__ import annotations

import os

import pytest

from repro import obs
from repro.resilience.faults import ENV_DIR, ENV_SEED, ENV_SPEC, install_plan
from repro.store import DirBackend, SqliteBackend, Store


@pytest.fixture(autouse=True)
def clean_slate():
    """No armed plan, no injection env vars, fresh metrics — both sides."""
    for var in (ENV_SPEC, ENV_SEED, ENV_DIR):
        os.environ.pop(var, None)
    install_plan(None)
    obs.reset()
    yield
    install_plan(None)
    for var in (ENV_SPEC, ENV_SEED, ENV_DIR):
        os.environ.pop(var, None)
    obs.reset()


@pytest.fixture(params=["dir", "sqlite"])
def store(request, tmp_path):
    """One Store per backend flavour; tests run against both."""
    if request.param == "dir":
        backend = DirBackend(tmp_path / "cache", site="test")
    else:
        backend = SqliteBackend(tmp_path / "cache.sqlite", site="test")
    st = Store(backend)
    yield st
    st.close()
