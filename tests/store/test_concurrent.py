"""Cross-process sqlite-backend guarantees: concurrent writers to one
key are last-write-wins with no torn reads, and a process killed
mid-write leaves no corrupt visible entry.

These spawn real subprocesses (not threads): WAL-mode sqlite's
guarantees are per-connection-per-process, and the harness workers the
backend exists for are processes.
"""

from __future__ import annotations

import subprocess
import sys
from pathlib import Path

from repro.resilience.faults import KILL_EXIT_CODE, FaultPlan
from repro.store import SqliteBackend, Store

REPO_ROOT = Path(__file__).resolve().parents[2]

WRITER = """
import json, sys
from repro.store import SqliteBackend, Store

path, key, tag, rounds = sys.argv[1], sys.argv[2], sys.argv[3], int(sys.argv[4])
store = Store(SqliteBackend(path, site="test"))
for i in range(rounds):
    store.put(key, {"writer": tag, "round": i, "pad": tag * 64}, label=tag)
    value = store.get(key)
    # A read must never be torn: whatever writer won, the body is a
    # complete, digest-verified record from *some* put.
    assert value is not None, "visible entry vanished mid-run"
    assert value["pad"] == value["writer"] * 64, f"torn read: {value}"
store.close()
print("ok")
"""


def run_child(code, *argv, env_extra=None):
    import os

    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    env.pop("REPRO_FAULTS", None)
    env.pop("REPRO_FAULTS_SEED", None)
    env.pop("REPRO_FAULTS_DIR", None)
    if env_extra:
        env.update(env_extra)
    return subprocess.run(
        [sys.executable, "-c", code, *map(str, argv)],
        capture_output=True,
        text=True,
        env=env,
        cwd=str(REPO_ROOT),
        timeout=120,
    )


class TestConcurrentWriters:
    def test_same_key_last_write_wins_no_torn_reads(self, tmp_path):
        path = tmp_path / "shared.sqlite"
        procs = [
            subprocess.Popen(
                [
                    sys.executable,
                    "-c",
                    WRITER,
                    str(path),
                    "contended",
                    tag,
                    "25",
                ],
                stdout=subprocess.PIPE,
                stderr=subprocess.PIPE,
                text=True,
                env=_child_env(),
                cwd=str(REPO_ROOT),
            )
            for tag in ("a", "b")
        ]
        for proc in procs:
            out, err = proc.communicate(timeout=120)
            assert proc.returncode == 0, err
            assert "ok" in out

        # Afterwards exactly one complete record is visible — from
        # whichever writer committed last.
        store = Store(SqliteBackend(path, site="test"))
        final = store.get("contended")
        assert final is not None
        assert final["writer"] in ("a", "b")
        assert final["pad"] == final["writer"] * 64
        assert store.backend.keys() == ["contended"]
        store.close()

    def test_disjoint_keys_all_land(self, tmp_path):
        path = tmp_path / "shared.sqlite"
        procs = [
            subprocess.Popen(
                [sys.executable, "-c", WRITER, str(path), f"k-{tag}", tag, "10"],
                stdout=subprocess.PIPE,
                stderr=subprocess.PIPE,
                text=True,
                env=_child_env(),
                cwd=str(REPO_ROOT),
            )
            for tag in ("a", "b", "c")
        ]
        for proc in procs:
            _, err = proc.communicate(timeout=120)
            assert proc.returncode == 0, err
        store = Store(SqliteBackend(path, site="test"))
        assert sorted(store.backend.keys()) == ["k-a", "k-b", "k-c"]
        for tag in ("a", "b", "c"):
            assert store.get(f"k-{tag}")["writer"] == tag
        store.close()


class TestKillMidWrite:
    def test_kill_between_insert_and_commit_rolls_back(self, tmp_path):
        """The put transaction fires ``{site}.sqlite.put`` between the
        INSERT and the COMMIT; a kill there must leave nothing visible."""
        path = tmp_path / "chaos.sqlite"
        plan = FaultPlan.from_spec("test.sqlite.put:kill")
        env = plan.arm_env({})
        result = run_child(
            WRITER, path, "doomed", "x", 1, env_extra=env
        )
        assert result.returncode == KILL_EXIT_CODE, result.stderr

        store = Store(SqliteBackend(path, site="test"))
        assert store.get("doomed") is None
        assert store.backend.keys() == []
        store.close()

    def test_survivors_keep_writing_after_a_kill(self, tmp_path):
        """A crashed writer must not wedge the database for others."""
        path = tmp_path / "chaos.sqlite"
        plan = FaultPlan.from_spec("test.sqlite.put:kill")
        killed = run_child(
            WRITER, path, "doomed", "x", 1, env_extra=plan.arm_env({})
        )
        assert killed.returncode == KILL_EXIT_CODE

        survivor = run_child(WRITER, path, "alive", "y", 5)
        assert survivor.returncode == 0, survivor.stderr
        store = Store(SqliteBackend(path, site="test"))
        assert store.get("alive")["writer"] == "y"
        assert store.backend.keys() == ["alive"]
        store.close()

    def test_kill_only_fires_once(self, tmp_path):
        """``times=1`` with a scratch dir: the second write in the same
        armed environment succeeds (the slot is already claimed)."""
        path = tmp_path / "chaos.sqlite"
        plan = FaultPlan.from_spec(
            "test.sqlite.put:kill", scratch_dir=tmp_path / "scratch"
        )
        env = plan.arm_env({})
        first = run_child(WRITER, path, "k", "x", 1, env_extra=env)
        assert first.returncode == KILL_EXIT_CODE
        second = run_child(WRITER, path, "k", "x", 1, env_extra=env)
        assert second.returncode == 0, second.stderr
        store = Store(SqliteBackend(path, site="test"))
        assert store.get("k")["writer"] == "x"
        store.close()


def _child_env():
    import os

    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    for var in ("REPRO_FAULTS", "REPRO_FAULTS_SEED", "REPRO_FAULTS_DIR"):
        env.pop(var, None)
    return env
