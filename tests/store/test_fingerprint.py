"""Pinned-format tests for the consolidated fingerprint module.

The exact byte formats here are load-bearing: every on-disk cache key
in the field is derived from them, so an accidental change silently
invalidates (or worse, aliases) existing entries.  If one of these
tests fails, the fix is to restore the format, not the expectation.
"""

from __future__ import annotations

import hashlib
import json

from repro.store.fingerprint import (
    canonical_json,
    content_hash,
    engine_fingerprint,
    reset_engine_fingerprint,
)


class TestCanonicalJson:
    def test_sorts_keys(self):
        assert canonical_json({"b": 1, "a": 2}) == b'{"a": 2, "b": 1}'

    def test_insertion_order_is_irrelevant(self):
        assert canonical_json({"x": 1, "y": 2}) == canonical_json(
            {"y": 2, "x": 1}
        )


class TestContentHashPinnedFormat:
    def test_is_sha256_of_sorted_json(self):
        payload = {"op": "simulate", "seed": 0, "sizes": {"T": 8, "L": 64}}
        expected = hashlib.sha256(
            json.dumps(payload, sort_keys=True).encode()
        ).hexdigest()
        assert content_hash(payload) == expected

    def test_known_value_is_pinned(self):
        # Golden value: changing canonical_json or the hash function
        # breaks this, on purpose.
        assert (
            content_hash({"a": 1})
            == hashlib.sha256(b'{"a": 1}').hexdigest()
        )
        assert content_hash({"a": 1}, length=24) == content_hash({"a": 1})[:24]

    def test_full_length_is_64_hex(self):
        digest = content_hash([1, 2, 3])
        assert len(digest) == 64
        assert set(digest) <= set("0123456789abcdef")


class TestEngineFingerprint:
    def test_stable_and_16_hex(self):
        assert engine_fingerprint() == engine_fingerprint()
        assert len(engine_fingerprint()) == 16

    def test_reset_recomputes_to_the_same_value(self):
        before = engine_fingerprint()
        reset_engine_fingerprint()
        assert engine_fingerprint() == before

    def test_folds_in_toolchain(self, monkeypatch):
        from repro.codegen import build

        reset_engine_fingerprint()
        monkeypatch.setattr(build, "toolchain_fingerprint", lambda: "tc-one")
        one = engine_fingerprint()
        reset_engine_fingerprint()
        monkeypatch.setattr(build, "toolchain_fingerprint", lambda: "tc-two")
        two = engine_fingerprint()
        reset_engine_fingerprint()
        assert one != two


class TestConsolidation:
    """The old import paths are the same objects, not near-copies."""

    def test_harness_reexports_the_one_implementation(self):
        from repro.experiments import harness
        from repro.store import fingerprint

        assert harness.engine_fingerprint is fingerprint.engine_fingerprint

    def test_store_toolchain_fingerprint_delegates_to_build(self):
        from repro.codegen import build
        from repro.store import fingerprint

        assert fingerprint.toolchain_fingerprint() == build.toolchain_fingerprint()

    def test_pipeline_cache_uses_the_one_fingerprint(self):
        import repro.pipeline.cache as pipeline_cache
        from repro.store import fingerprint

        assert (
            pipeline_cache.engine_fingerprint
            is fingerprint.engine_fingerprint
        )
