"""Lock-contention retries in the sqlite backend.

``busy_timeout`` handles most contention inside sqlite itself, but a
"database is locked" error can still escape it; the backend must retry
the whole write with capped backoff rather than failing a request over
a transient lock storm.
"""

import sqlite3

import pytest

from repro import obs
from repro.store import SqliteBackend


class FlakyConnection:
    """Delegates to a real connection, but fails the first ``failures``
    write statements with a chosen OperationalError."""

    WRITE_PREFIXES = ("BEGIN", "UPDATE", "DELETE", "INSERT")

    def __init__(self, real, failures, message="database is locked"):
        self._real = real
        self.remaining = failures
        self.message = message
        self.raised = 0

    def execute(self, sql, *args):
        if self.remaining > 0 and sql.lstrip().upper().startswith(
            self.WRITE_PREFIXES
        ):
            self.remaining -= 1
            self.raised += 1
            raise sqlite3.OperationalError(self.message)
        return self._real.execute(sql, *args)


@pytest.fixture
def backend(tmp_path):
    backend = SqliteBackend(tmp_path / "cache.sqlite", site="test")
    yield backend
    backend.close()


@pytest.fixture
def no_sleep(monkeypatch):
    """Capture backoff delays instead of actually sleeping."""
    slept = []
    monkeypatch.setattr(
        "repro.store.backend.time.sleep", lambda s: slept.append(s)
    )
    return slept


def make_flaky(backend, monkeypatch, failures, message="database is locked"):
    real_connect = backend._connect
    flaky = FlakyConnection(real_connect(), failures, message=message)
    monkeypatch.setattr(backend, "_connect", lambda: flaky)
    return flaky


class TestPutRetries:
    def test_put_survives_transient_locks(
        self, backend, monkeypatch, no_sleep
    ):
        flaky = make_flaky(backend, monkeypatch, failures=2)
        backend.put("k", {"v": 1})
        assert flaky.raised == 2
        assert backend.get("k") == {"v": 1}
        counters = obs.get_metrics().snapshot()["counters"]
        assert counters["store.locked_retries"] == 2
        # Backoff followed the schedule's prefix, shortest first.
        assert no_sleep == list(SqliteBackend.LOCKED_BACKOFF_S[:2])

    def test_busy_message_is_retried_too(
        self, backend, monkeypatch, no_sleep
    ):
        make_flaky(
            backend, monkeypatch, failures=1, message="database table is busy"
        )
        backend.put("k", {"v": 2})
        assert backend.get("k") == {"v": 2}

    def test_lock_error_propagates_once_schedule_is_dry(
        self, backend, monkeypatch, no_sleep
    ):
        endless = len(SqliteBackend.LOCKED_BACKOFF_S) + 10
        make_flaky(backend, monkeypatch, failures=endless)
        with pytest.raises(sqlite3.OperationalError, match="locked"):
            backend.put("k", {"v": 3})
        # One sleep per schedule slot, then the final attempt raised.
        assert no_sleep == list(SqliteBackend.LOCKED_BACKOFF_S)

    def test_real_errors_are_not_retried(
        self, backend, monkeypatch, no_sleep
    ):
        make_flaky(
            backend, monkeypatch, failures=1, message="disk I/O error"
        )
        with pytest.raises(sqlite3.OperationalError, match="I/O"):
            backend.put("k", {"v": 4})
        assert no_sleep == []  # no backoff for a non-lock failure
        counters = obs.get_metrics().snapshot()["counters"]
        assert "store.locked_retries" not in counters


class TestOtherWrites:
    def test_annotate_and_delete_retry_as_well(
        self, backend, monkeypatch, no_sleep
    ):
        from repro.store import Provenance

        backend.put("k", {"v": 5})
        flaky = make_flaky(backend, monkeypatch, failures=2)
        backend.annotate("k", Provenance(op="test", inputs={}))
        assert backend.delete("k") is True
        assert flaky.raised == 2
        assert len(no_sleep) == 2
