"""Migration of the three pre-store cache layouts into the unified
store: in-place annotation, idempotence, warm-hit preservation, and
``--into`` copies (including onto sqlite)."""

from __future__ import annotations

import json

from repro.pipeline.cache import ArtifactCache
from repro.resilience.cachesafe import CORRUPT_DIR, atomic_write_json
from repro.store import SqliteBackend, Store
from repro.store.fingerprint import content_hash
from repro.store.migrate import infer_op, migrate_path

SIM_KEY = content_hash({"task": "sim"})  # 64 hex
STAGE_KEY = content_hash({"stage": "x"}, length=24)
SO_KEY = f"run-{content_hash({'so': 'y'}, length=24)}"


class TestInferOp:
    def test_harness_key_is_simulate(self):
        assert infer_op(SIM_KEY) == "simulate"

    def test_pipeline_key_is_the_stage(self):
        assert infer_op(f"execute-{STAGE_KEY}") == "execute"
        assert infer_op(f"uov-search-{STAGE_KEY}") == "uov-search"

    def test_so_key_is_compile_so(self):
        # Checked before the stage pattern: "run-<hex>" must not
        # classify as stage "run".
        assert infer_op(SO_KEY) == "compile-so"

    def test_unrecognised(self):
        assert infer_op("README") is None
        assert infer_op("notes-abc") is None


def seed_legacy(root):
    """One entry per historical cache layout, written the legacy way."""
    root.mkdir(parents=True, exist_ok=True)
    # Harness result cache: compact JSON under the full 64-hex task key.
    atomic_write_json(root / f"{SIM_KEY}.json", {"series": [1, 2, 3]})
    # Pipeline artifact cache: indent=2 under <stage>-<24 hex>.
    atomic_write_json(
        root / f"execute-{STAGE_KEY}.json", {"verified": True}, indent=2
    )
    # Native object cache: a bare .so, no wrapper.
    (root / f"{SO_KEY}.so").write_bytes(b"\x7fELF not really")


class TestInPlace:
    def test_annotates_every_layout(self, tmp_path):
        root = tmp_path / "legacy"
        seed_legacy(root)
        report = migrate_path(root)
        assert report["migrated"] == 3
        assert report["by_op"] == {
            "simulate": 1, "execute": 1, "compile-so": 1,
        }
        store = Store.open(root)
        assert store.provenance(SIM_KEY).op == "simulate"
        assert store.provenance(f"execute-{STAGE_KEY}").op == "execute"
        assert store.provenance(SO_KEY).op == "compile-so"
        # Migrated provenance cannot know the producing engine.
        assert store.provenance(SIM_KEY).engine == "unknown"
        # The .so gains a meta entry naming the object file.
        assert store.get(SO_KEY)["file"] == f"{SO_KEY}.so"

    def test_value_bytes_untouched(self, tmp_path):
        root = tmp_path / "legacy"
        seed_legacy(root)
        before = (root / f"{SIM_KEY}.json").read_bytes()
        migrate_path(root)
        assert (root / f"{SIM_KEY}.json").read_bytes() == before

    def test_idempotent(self, tmp_path):
        root = tmp_path / "legacy"
        seed_legacy(root)
        migrate_path(root)
        again = migrate_path(root)
        assert again["migrated"] == 0
        assert again["already"] == 4  # 3 seeds + the .so meta entry

    def test_quarantines_corrupt_entries(self, tmp_path):
        root = tmp_path / "legacy"
        seed_legacy(root)
        (root / f"{SIM_KEY}.json").write_text("{ torn")
        report = migrate_path(root)
        assert report["quarantined"] == 1
        assert report["migrated"] == 2
        assert (root / CORRUPT_DIR / f"{SIM_KEY}.json").exists()

    def test_skips_unrecognised_files(self, tmp_path):
        root = tmp_path / "legacy"
        seed_legacy(root)
        atomic_write_json(root / "checkpoint-meta.json", {"x": 1})
        report = migrate_path(root)
        assert report["unrecognised"] >= 1

    def test_pipeline_cache_still_warm_hits(self, tmp_path):
        """The acceptance property: migration must not cost a single
        warm hit through the historical key scheme."""
        root = tmp_path / "pipeline"
        cache = ArtifactCache(root)
        cache.store("execute", STAGE_KEY, {"verified": True, "cycles": 9})
        migrate_path(root)
        rewarmed = ArtifactCache(root)
        assert rewarmed.load("execute", STAGE_KEY) == {
            "verified": True, "cycles": 9,
        }
        assert rewarmed.provenance("execute", STAGE_KEY).op == "execute"


class TestInto:
    def test_copy_into_directory(self, tmp_path):
        root = tmp_path / "legacy"
        seed_legacy(root)
        target = tmp_path / "unified"
        report = migrate_path(root, into=target)
        assert report["into"] == str(target)
        assert report["migrated"] == 3
        store = Store.open(target)
        assert store.get(SIM_KEY) == {"series": [1, 2, 3]}
        assert store.get(f"execute-{STAGE_KEY}") == {"verified": True}
        assert store.provenance(SIM_KEY).extra["migrated_from"] == str(root)

    def test_copy_into_sqlite(self, tmp_path):
        root = tmp_path / "legacy"
        seed_legacy(root)
        target = tmp_path / "unified.sqlite"
        report = migrate_path(root, into=target)
        assert report["migrated"] == 3
        store = Store(SqliteBackend(target))
        assert store.get(SIM_KEY) == {"series": [1, 2, 3]}
        assert store.provenance(SO_KEY).op == "compile-so"
        assert {i.op for i in store.query()} == {
            "simulate", "execute", "compile-so",
        }
        store.close()

    def test_source_untouched_by_copy(self, tmp_path):
        root = tmp_path / "legacy"
        seed_legacy(root)
        before = sorted(p.name for p in root.iterdir())
        migrate_path(root, into=tmp_path / "unified")
        assert sorted(p.name for p in root.iterdir()) == before

    def test_missing_source_raises(self, tmp_path):
        import pytest

        with pytest.raises(FileNotFoundError):
            migrate_path(tmp_path / "nope")
