"""The ``@op`` memoization decorator: hits, invalidation levers,
introspection helpers, and default-store resolution."""

from __future__ import annotations

import pytest

from repro.store import Store, get_default_store, op, set_default_store
from repro.store.fingerprint import reset_engine_fingerprint
from repro.store.ops import STORE_ENV


@pytest.fixture(autouse=True)
def fresh_default_store(monkeypatch):
    monkeypatch.delenv(STORE_ENV, raising=False)
    set_default_store(None)
    yield
    set_default_store(None)


def counted(store, version=1):
    calls = []

    @op(name="probe", version=version, store=store)
    def probe(x, y=0):
        calls.append((x, y))
        return {"sum": x + y}

    return probe, calls


class TestMemoization:
    def test_second_call_is_a_hit(self):
        probe, calls = counted(Store.in_memory())
        assert probe(2, y=3) == {"sum": 5}
        assert probe(2, y=3) == {"sum": 5}
        assert calls == [(2, 3)]

    def test_distinct_arguments_are_distinct_keys(self):
        probe, calls = counted(Store.in_memory())
        probe(1)
        probe(2)
        assert len(calls) == 2
        assert probe.key(1) != probe.key(2)

    def test_version_bump_invalidates(self):
        store = Store.in_memory()
        v1, calls1 = counted(store, version=1)
        v2, calls2 = counted(store, version=2)
        v1(5)
        v2(5)
        assert calls1 == [(5, 0)] and calls2 == [(5, 0)]
        assert v1.key(5) != v2.key(5)

    def test_engine_change_invalidates(self, monkeypatch):
        from repro.codegen import build

        store = Store.in_memory()
        probe, _ = counted(store)
        reset_engine_fingerprint()
        monkeypatch.setattr(build, "toolchain_fingerprint", lambda: "tc-one")
        key_one = probe.key(7)
        reset_engine_fingerprint()
        monkeypatch.setattr(build, "toolchain_fingerprint", lambda: "tc-two")
        key_two = probe.key(7)
        reset_engine_fingerprint()
        assert key_one != key_two

    def test_uncached_bypasses_the_store(self):
        probe, calls = counted(Store.in_memory())
        probe(1)
        probe.uncached(1)
        probe.uncached(1)
        assert len(calls) == 3

    def test_wrapper_identity(self):
        probe, _ = counted(Store.in_memory(), version=3)
        assert probe.op_name == "probe"
        assert probe.op_version == 3
        assert probe.key(1).startswith("probe-")

    def test_default_name_is_function_name(self):
        @op(store=Store.in_memory())
        def quadrature(n):
            return n * n

        assert quadrature.op_name == "quadrature"
        assert quadrature(3) == 9


class TestProvenance:
    def test_miss_records_full_provenance(self):
        store = Store.in_memory()
        probe, _ = counted(store, version=4)
        probe(10, y=1)
        info = store.query(op="probe")
        assert len(info) == 1
        record = info[0].provenance
        assert record.op == "probe"
        assert record.op_version == 4
        assert record.engine != "unknown"
        assert "call" in record.inputs
        assert record.wall_s is not None
        assert record.created_at > 0


class TestDefaultStore:
    def test_in_memory_until_configured(self):
        default = get_default_store()
        assert get_default_store() is default  # memoized

    def test_set_default_store_wins(self):
        mine = Store.in_memory()
        set_default_store(mine)
        assert get_default_store() is mine

        @op(name="d")
        def doubled(x):
            return x * 2

        doubled(21)
        assert mine.query(op="d")

    def test_env_var_names_the_path(self, monkeypatch, tmp_path):
        monkeypatch.setenv(STORE_ENV, str(tmp_path / "opstore"))
        store = get_default_store()
        store.put("k", 1)
        assert (tmp_path / "opstore" / "k.json").exists()
