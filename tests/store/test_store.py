"""Store core behavior over both backends: CRUD, provenance, query, gc,
corruption healing, and byte-compatibility with the pre-store caches."""

from __future__ import annotations

import sqlite3

import pytest

from repro import obs
from repro.resilience.cachesafe import CORRUPT_DIR, atomic_write_json
from repro.store import DirBackend, Provenance, SqliteBackend, Store


def prov(op="simulate", engine="eng-a", created_at=100.0, **kw):
    return Provenance(op=op, engine=engine, created_at=created_at, **kw)


class TestRoundTrip:
    def test_put_get(self, store):
        store.put("k1", {"value": 42}, label="k1")
        assert store.get("k1") == {"value": 42}

    def test_missing_key_is_default(self, store):
        assert store.get("nope") is None
        assert store.get("nope", default="x") == "x"

    def test_has_and_delete(self, store):
        store.put("k", [1, 2, 3])
        assert store.has("k")
        assert store.delete("k")
        assert not store.has("k")
        assert not store.delete("k")

    def test_overwrite_wins(self, store):
        store.put("k", {"v": 1})
        store.put("k", {"v": 2})
        assert store.get("k") == {"v": 2}

    def test_hit_miss_counters(self, store):
        store.put("k", 1)
        store.get("k")
        store.get("absent")
        counters = obs.get_metrics().snapshot()["counters"]
        assert counters["store.hits"] == 1
        assert counters["store.misses"] == 1
        assert counters["store.puts"] == 1


class TestProvenance:
    def test_round_trips(self, store):
        record = prov(
            op="execute",
            inputs={"parent": "abc"},
            spec="deadbeef",
            machine="pentium-pro",
            wall_s=0.25,
            extra={"label": "stencil5"},
        )
        store.put("k", {"v": 1}, provenance=record)
        got = store.provenance("k")
        assert got == record

    def test_absent_provenance_is_none(self, store):
        store.put("k", {"v": 1})
        assert store.provenance("k") is None

    def test_annotate_attaches_without_rewriting(self, store):
        store.put("k", {"v": 1})
        store.annotate("k", prov(op="late"))
        assert store.get("k") == {"v": 1}
        assert store.provenance("k").op == "late"


class TestQuery:
    def seed(self, store):
        store.put("a", 1, provenance=prov(op="simulate", engine="eng-a",
                                          created_at=100.0))
        store.put("b", 2, provenance=prov(op="simulate", engine="eng-b",
                                          created_at=200.0))
        store.put("c", 3, provenance=prov(op="execute", engine="eng-a",
                                          created_at=300.0))
        store.put("d", 4)  # no provenance: op "?", engine "unknown"

    def test_filter_by_op(self, store):
        self.seed(store)
        assert [i.key for i in store.query(op="simulate")] == ["b", "a"]
        assert [i.key for i in store.query(op="execute")] == ["c"]

    def test_filter_by_engine(self, store):
        self.seed(store)
        assert {i.key for i in store.query(engine="eng-a")} == {"a", "c"}

    def test_filter_by_since(self, store):
        self.seed(store)
        keys = {i.key for i in store.query(since=150.0)}
        # the unannotated entry's created_at is its mtime (now) — present
        assert {"b", "c"} <= keys
        assert "a" not in keys

    def test_stale_vs_current(self, store):
        self.seed(store)
        stale = {i.key for i in store.query(stale=True,
                                            current_engine="eng-a")}
        current = {i.key for i in store.query(stale=False,
                                              current_engine="eng-a")}
        assert stale == {"b", "d"}
        assert current == {"a", "c"}

    def test_newest_first(self, store):
        self.seed(store)
        annotated = [i for i in store.query() if i.key in "abc"]
        assert [i.key for i in annotated] == ["c", "b", "a"]


class TestGc:
    def test_keep_latest_per_op(self, store):
        for k, ts in (("a", 1.0), ("b", 2.0), ("c", 3.0)):
            store.put(k, k, provenance=prov(op="simulate", created_at=ts))
        store.put("x", "x", provenance=prov(op="execute", created_at=1.0))
        removed = store.gc(keep_latest=1)
        assert sorted(removed) == ["a", "b"]
        assert store.has("c") and store.has("x")

    def test_max_bytes_evicts_oldest_first(self, store):
        for k, ts in (("old", 1.0), ("mid", 2.0), ("new", 3.0)):
            store.put(k, {"pad": "z" * 50}, provenance=prov(created_at=ts))
        sizes = {i.key: i.nbytes for i in store.items()}
        budget = sizes["new"] + sizes["mid"]
        removed = store.gc(max_bytes=budget)
        assert removed == ["old"]
        assert store.has("new") and store.has("mid")

    def test_no_arguments_is_a_no_op(self, store):
        store.put("k", 1)
        assert store.gc() == []
        assert store.has("k")


class TestStats:
    def test_counts_bytes_and_engine_split(self, store):
        store.put("a", 1, provenance=prov(op="simulate", engine="cur"))
        store.put("b", 2, provenance=prov(op="simulate", engine="old"))
        store.put("c", 3, provenance=prov(op="execute", engine="cur"))
        stats = store.stats(current_engine="cur")
        assert stats["entries"] == 3
        assert stats["by_op"]["simulate"]["entries"] == 2
        assert stats["by_op"]["execute"]["entries"] == 1
        assert stats["engine"] == {
            "current_fingerprint": "cur", "current": 2, "stale": 1,
        }
        assert stats["bytes"] == sum(i.nbytes for i in store.items())
        assert stats["session"]["store.puts"] == 3


class TestHealing:
    def test_dir_backend_quarantines_corrupt_entry(self, tmp_path):
        root = tmp_path / "cache"
        store = Store(DirBackend(root, site="test"))
        store.put("k", {"v": 1})
        (root / "k.json").write_text("{ not json")
        assert store.get("k") is None  # miss, healed
        assert (root / CORRUPT_DIR / "k.json").exists()
        counters = obs.get_metrics().snapshot()["counters"]
        assert counters["store.heal.quarantined"] == 1
        assert counters["resilience.cache.corrupt"] == 1

    def test_sqlite_backend_deletes_corrupt_row(self, tmp_path):
        path = tmp_path / "cache.sqlite"
        store = Store(SqliteBackend(path, site="test"))
        store.put("k", {"v": 1})
        store.close()
        conn = sqlite3.connect(str(path))
        conn.execute("UPDATE entries SET body = '{\"v\": 999}' WHERE key='k'")
        conn.commit()
        conn.close()
        store = Store(SqliteBackend(path, site="test"))
        assert store.get("k") is None  # digest mismatch: healed miss
        assert store.backend.keys() == []  # row deleted
        counters = obs.get_metrics().snapshot()["counters"]
        assert counters["store.heal.quarantined"] == 1
        store.close()


class TestLegacyCompat:
    """Entries written by the pre-store cachesafe idiom keep hitting."""

    def test_reads_pre_store_files(self, tmp_path):
        root = tmp_path / "cache"
        root.mkdir()
        atomic_write_json(root / "legacy.json", {"old": True})
        store = Store(DirBackend(root, site="test"))
        assert store.get("legacy") == {"old": True}
        assert store.provenance("legacy") is None

    def test_writes_the_same_wrapper_format(self, tmp_path):
        root = tmp_path / "cache"
        store = Store(DirBackend(root, site="test", indent=None))
        store.put("k", {"v": 1})
        direct = tmp_path / "direct.json"
        atomic_write_json(direct, {"v": 1})
        assert (root / "k.json").read_bytes() == direct.read_bytes()

    def test_provenance_lives_in_a_sidecar(self, tmp_path):
        """The value file stays byte-identical with and without
        provenance — the self-heal suite asserts bit-identical
        recomputation, so provenance must never touch value bytes."""
        root = tmp_path / "cache"
        store = Store(DirBackend(root, site="test"))
        store.put("bare", {"v": 1})
        store.put("rich", {"v": 1}, provenance=prov())
        assert (root / "bare.json").read_bytes() == (
            root / "rich.json"
        ).read_bytes()
        assert (root / ".prov" / "rich.json").exists()

    def test_delete_removes_companion_file(self, tmp_path):
        root = tmp_path / "cache"
        store = Store(DirBackend(root, site="test"))
        so = root / "run-aaaa.so"
        root.mkdir(parents=True, exist_ok=True)
        so.write_bytes(b"\x7fELF fake")
        store.put("run-aaaa", {"file": "run-aaaa.so"}, provenance=prov())
        assert store.delete("run-aaaa")
        assert not so.exists()
        assert not (root / "run-aaaa.json").exists()


class TestOpenBackend:
    def test_sqlite_suffix_selects_sqlite(self, tmp_path):
        st = Store.open(tmp_path / "x.sqlite")
        assert isinstance(st.backend, SqliteBackend)
        st.close()

    def test_directory_is_the_default(self, tmp_path):
        st = Store.open(tmp_path / "plain-dir")
        assert isinstance(st.backend, DirBackend)
        st.close()

    def test_in_memory(self):
        st = Store.in_memory()
        st.put("k", {"v": 1}, provenance=prov())
        assert st.get("k") == {"v": 1}
        assert st.provenance("k").op == "simulate"
        assert st.gc(keep_latest=0) == ["k"]


class TestSqliteDurability:
    def test_survives_reopen(self, tmp_path):
        path = tmp_path / "cache.db"
        store = Store.open(path)
        store.put("k", {"v": 1}, provenance=prov(op="execute"))
        store.close()
        store = Store.open(path)
        assert store.get("k") == {"v": 1}
        assert store.provenance("k").op == "execute"
        store.close()

    def test_wal_mode_is_armed(self, tmp_path):
        backend = SqliteBackend(tmp_path / "cache.sqlite")
        mode = backend._connect().execute("PRAGMA journal_mode").fetchone()[0]
        assert mode == "wal"
        backend.close()


def test_entryinfo_defaults():
    from repro.store import EntryInfo

    info = EntryInfo(key="k", nbytes=1, created_at=0.0, provenance=None)
    assert info.op == "?"
    assert info.engine == "unknown"
    rich = EntryInfo(
        key="k", nbytes=1, created_at=0.0,
        provenance=prov(op="execute", engine="fp"),
    )
    assert rich.op == "execute"
    assert rich.engine == "fp"


def test_json_bodies_only(store):
    with pytest.raises(TypeError):
        store.put("bad", object())
