"""The ``repro store`` CLI group and ``repro stats --store``, driven
end-to-end through ``repro.cli.main``."""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.store import Provenance, Store
from repro.store.cli import parse_since
from tests.store.test_migrate import SIM_KEY, STAGE_KEY, seed_legacy


@pytest.fixture
def seeded(tmp_path):
    """A store with three annotated entries and one bare entry."""
    root = tmp_path / "unified"
    store = Store.open(root)
    store.put("a", {"v": 1}, provenance=Provenance(
        op="simulate", engine="eng-a", created_at=100.0))
    store.put("b", {"v": 2}, provenance=Provenance(
        op="simulate", engine="eng-b", created_at=200.0))
    store.put(f"execute-{STAGE_KEY}", {"v": 3}, provenance=Provenance(
        op="execute", engine="eng-a", created_at=300.0))
    store.put("bare", {"v": 4})
    store.close()
    return root


class TestStoreStats:
    def test_text(self, seeded, capsys):
        assert main(["store", "stats", str(seeded)]) == 0
        out = capsys.readouterr().out
        assert "4 entries" in out
        assert "simulate" in out and "execute" in out
        assert "stale" in out

    def test_json(self, seeded, capsys):
        assert main(["store", "stats", str(seeded), "--format", "json"]) == 0
        stats = json.loads(capsys.readouterr().out)
        assert stats["entries"] == 4
        assert stats["by_op"]["simulate"]["entries"] == 2
        assert set(stats["engine"]) == {
            "current_fingerprint", "current", "stale",
        }


class TestStoreQuery:
    def test_filter_by_op(self, seeded, capsys):
        assert main(["store", "query", str(seeded), "--op", "execute"]) == 0
        out = capsys.readouterr().out
        assert f"execute-{STAGE_KEY}" in out
        assert "\na " not in out

    def test_json_carries_provenance(self, seeded, capsys):
        assert main([
            "store", "query", str(seeded),
            "--op", "simulate", "--format", "json",
        ]) == 0
        rows = json.loads(capsys.readouterr().out)
        assert [r["key"] for r in rows] == ["b", "a"]  # newest first
        assert rows[0]["provenance"]["engine"] == "eng-b"

    def test_engine_filter(self, seeded, capsys):
        assert main([
            "store", "query", str(seeded),
            "--engine", "eng-a", "--format", "json",
        ]) == 0
        rows = json.loads(capsys.readouterr().out)
        assert {r["key"] for r in rows} == {"a", f"execute-{STAGE_KEY}"}

    def test_stale_flags_unknown_engines(self, seeded, capsys):
        # Every seeded engine differs from the live fingerprint, so with
        # no override everything (incl. the bare entry) is stale.
        assert main([
            "store", "query", str(seeded), "--stale", "--format", "json",
        ]) == 0
        rows = json.loads(capsys.readouterr().out)
        assert {r["key"] for r in rows} == {
            "a", "b", "bare", f"execute-{STAGE_KEY}",
        }

    def test_stale_and_current_conflict(self, seeded, capsys):
        assert main([
            "store", "query", str(seeded), "--stale", "--current",
        ]) == 2

    def test_bad_since_is_a_usage_error(self, seeded):
        assert main([
            "store", "query", str(seeded), "--since", "yesterday",
        ]) == 2

    def test_no_matches(self, seeded, capsys):
        assert main(["store", "query", str(seeded), "--op", "nope"]) == 0
        assert "no matching entries" in capsys.readouterr().out


class TestParseSince:
    def test_ages(self):
        import time

        now = time.time()
        assert now - parse_since("1h") == pytest.approx(3600.0, abs=5.0)
        assert now - parse_since("7d") == pytest.approx(604800.0, abs=5.0)
        assert now - parse_since("30m") == pytest.approx(1800.0, abs=5.0)

    def test_epoch_passthrough(self):
        assert parse_since("12345.5") == 12345.5

    def test_rejects_garbage(self):
        with pytest.raises(ValueError):
            parse_since("yesterday")


class TestStoreGc:
    def test_requires_a_policy(self, seeded):
        assert main(["store", "gc", str(seeded)]) == 2

    def test_keep_latest(self, seeded, capsys):
        assert main([
            "store", "gc", str(seeded), "--keep-latest", "1",
        ]) == 0
        out = capsys.readouterr().out
        assert "removed a" in out  # older of the two simulate entries
        store = Store.open(seeded)
        assert not store.has("a")
        assert store.has("b")

    def test_dry_run_deletes_nothing(self, seeded, capsys):
        assert main([
            "store", "gc", str(seeded), "--keep-latest", "1", "--dry-run",
        ]) == 0
        assert "would remove a" in capsys.readouterr().out
        assert Store.open(seeded).has("a")


class TestStoreMigrate:
    def test_in_place(self, tmp_path, capsys):
        root = tmp_path / "legacy"
        seed_legacy(root)
        assert main(["store", "migrate", str(root)]) == 0
        out = capsys.readouterr().out
        assert "3 entries migrated in place" in out
        store = Store.open(root)
        assert store.provenance(SIM_KEY).op == "simulate"

    def test_json_report(self, tmp_path, capsys):
        root = tmp_path / "legacy"
        seed_legacy(root)
        assert main([
            "store", "migrate", str(root), "--format", "json",
        ]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["migrated"] == 3
        assert report["by_op"]["compile-so"] == 1

    def test_into_sqlite(self, tmp_path, capsys):
        root = tmp_path / "legacy"
        seed_legacy(root)
        target = tmp_path / "unified.sqlite"
        assert main(["store", "migrate", str(root), "--into", str(target)]) == 0
        assert f"into {target}" in capsys.readouterr().out
        store = Store.open(target)
        assert store.get(SIM_KEY) == {"series": [1, 2, 3]}
        store.close()

    def test_missing_dir(self, tmp_path):
        assert main(["store", "migrate", str(tmp_path / "nope")]) == 2


class TestStatsStoreFlag:
    def test_stats_learns_store(self, seeded, capsys):
        assert main(["stats", "--store", str(seeded)]) == 0
        out = capsys.readouterr().out
        assert "4 entries" in out

    def test_stats_without_anything_errors(self, monkeypatch, capsys):
        monkeypatch.delenv("REPRO_LEDGER", raising=False)
        assert main(["stats"]) == 2
