"""The command-line interface."""

import pytest

from repro.cli import main


class TestFind:
    def test_find_shortest(self, capsys):
        assert main(["find", "--stencil", "1,0;0,1;1,1"]) == 0
        out = capsys.readouterr().out
        assert "UOV (1, 1)" in out
        assert "initial UOV: (2, 2)" in out

    def test_find_with_bounds(self, capsys):
        assert (
            main(
                [
                    "find",
                    "--stencil",
                    "1,0;1,1;1,-1",
                    "--bounds",
                    "1,1;1,6;10,9;10,4",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "UOV (3, 1)" in out
        assert "16 locations" in out

    def test_find_with_node_budget(self, capsys):
        assert (
            main(["find", "--stencil", "1,-2;1,-1;1,0;1,1;1,2",
                  "--max-nodes", "1"])
            == 0
        )
        assert "best-so-far" in capsys.readouterr().out


class TestMap:
    def test_map_2d(self, capsys):
        assert main(["map", "--ov", "2,0", "--box", "1,0:8,9"]) == 0
        out = capsys.readouterr().out
        assert "interleaved" in out and "consecutive" in out
        assert "q0 % 2" in out

    def test_map_3d(self, capsys):
        assert main(["map", "--ov", "1,1,1", "--box", "0,0,0:4,4,4"]) == 0
        assert "SM(" in capsys.readouterr().out


class TestCodegen:
    def test_python_output(self, capsys):
        assert (
            main(["codegen", "stencil5", "ov", "--sizes", "T=3,L=8"]) == 0
        )
        out = capsys.readouterr().out
        assert "def run(" in out

    def test_c_output(self, capsys):
        assert (
            main(
                [
                    "codegen",
                    "psm",
                    "ov-tiled",
                    "--sizes",
                    "n0=5,n1=5",
                    "--lang",
                    "c",
                ]
            )
            == 0
        )
        assert "void run(" in capsys.readouterr().out

    def test_unknown_code(self, capsys):
        assert main(["codegen", "nope", "ov", "--sizes", "T=1,L=2"]) == 2

    def test_unknown_version(self, capsys):
        assert (
            main(["codegen", "stencil5", "nope", "--sizes", "T=1,L=2"]) == 2
        )


class TestParsing:
    def test_bad_stencil_text(self):
        with pytest.raises(SystemExit):
            main(["find"])  # missing required argument


class TestObservability:
    def test_find_prints_prunes_and_incumbent_history(self, capsys):
        assert main(["find", "--stencil", "1,0;0,1;1,1"]) == 0
        out = capsys.readouterr().out
        assert "pruned:" in out and "phi-bound=" in out
        assert "incumbents:  (2, 2)@node0 -> (1, 1)@node4" in out

    def test_find_trace_round_trips_through_trace_summary(
        self, tmp_path, capsys
    ):
        import json

        from repro import obs

        obs.reset()
        path = tmp_path / "t.jsonl"
        assert (
            main(["find", "--stencil", "1,0;0,1;1,1", "--trace", str(path)])
            == 0
        )
        capsys.readouterr()
        records = [
            json.loads(line) for line in path.read_text().splitlines()
        ]
        assert records[0]["type"] == "meta"
        assert records[-1]["type"] == "metrics"
        counters = records[-1]["snapshot"]["counters"]
        assert counters["search.pruned.phi_bound"] > 0
        assert any(
            r["type"] == "event" and r["name"] == "search.incumbent"
            for r in records
        )

        assert main(["trace-summary", str(path)]) == 0
        out = capsys.readouterr().out
        assert "search.find_optimal_uov" in out
        assert "search.incumbent" in out
        assert "search.pruned.phi_bound" in out

    def test_profile_prints_metrics_to_stderr(self, capsys):
        assert main(["find", "--stencil", "1,0;0,1;1,1", "--profile"]) == 0
        err = capsys.readouterr().err
        assert "-- metrics --" in err and "search.nodes_visited" in err

    def test_bad_log_level_is_rejected(self):
        with pytest.raises(ValueError, match="unknown log level"):
            main(
                ["find", "--stencil", "1,0;0,1;1,1", "--log-level", "nope"]
            )


class TestLint:
    """The ``repro lint`` exit-code contract: 0 below the --fail-on
    threshold, 1 at/above it, 2 on usage errors."""

    def test_corpus_is_clean_at_default_threshold(self, capsys):
        assert main(["lint"]) == 0
        out = capsys.readouterr().out
        # Rolling buffers report their expected schedule-dependence as
        # info findings; nothing reaches error severity.
        assert "RACE002" in out
        assert "error" not in out.splitlines()[-1]

    def test_corpus_is_clean_at_warning_threshold(self, capsys):
        assert main(["lint", "--fail-on", "warning"]) == 0

    def test_json_format_and_artifact(self, tmp_path, capsys):
        import json

        artifact = tmp_path / "findings.json"
        assert (
            main(
                [
                    "lint", "--codes", "stencil5", "--format", "json",
                    "--out", str(artifact),
                ]
            )
            == 0
        )
        stdout_record = json.loads(capsys.readouterr().out)
        file_record = json.loads(artifact.read_text())
        assert stdout_record == file_record
        assert file_record["schema"] == 1
        assert "summary" in file_record

    def test_unknown_code_is_usage_error(self, capsys):
        assert main(["lint", "--codes", "nosuch"]) == 2
        assert "unknown code" in capsys.readouterr().err

    def test_unknown_pass_is_usage_error(self, capsys):
        assert main(["lint", "--passes", "nosuch"]) == 2
        assert "unknown lint pass" in capsys.readouterr().err

    def test_unwritable_artifact_is_usage_error(self, tmp_path, capsys):
        assert (
            main(["lint", "--codes", "psm", "--out", str(tmp_path)]) == 2
        )
        assert "cannot write" in capsys.readouterr().err

    def test_fail_on_thresholds(self, monkeypatch, capsys):
        """A warning finding fails --fail-on warning but not the default."""
        from repro.analysis import passes
        from repro.analysis.diag import Diagnostics, Severity
        from repro.obs.metrics import Metrics

        def fake_run_lint(**kwargs):
            diag = Diagnostics(metrics=Metrics())
            diag.emit("STO001", Severity.WARNING, "x/y", "size mismatch")
            return diag

        monkeypatch.setattr(passes, "run_lint", fake_run_lint)
        assert main(["lint"]) == 0
        assert main(["lint", "--fail-on", "error"]) == 0
        assert main(["lint", "--fail-on", "warning"]) == 1
        capsys.readouterr()

    def test_fuzz_budget_runs_the_fuzz_pass(self, capsys):
        from repro.obs.metrics import get_metrics

        before = get_metrics().snapshot()["counters"].get(
            "lint.fuzz.samples", 0
        )
        assert main(["lint", "--codes", "simple2d", "--fuzz", "2"]) == 0
        after = get_metrics().snapshot()["counters"].get(
            "lint.fuzz.samples", 0
        )
        assert after > before
        capsys.readouterr()


class TestCommon:
    def test_shared_uov_found(self, capsys):
        assert (
            main(
                [
                    "common",
                    "--stencils",
                    "1,-2;1,-1;1,0;1,1;1,2 | 1,-1;1,0;1,1",
                ]
            )
            == 0
        )
        assert "common UOV: (2, 0)" in capsys.readouterr().out

    def test_no_common_uov(self, capsys):
        assert main(["common", "--stencils", "1,0 | 0,1"]) == 1
        assert "no common UOV" in capsys.readouterr().out


class TestCompile:
    def test_compile_registered_code(self, capsys):
        assert main(["compile", "stencil5", "--execute", "--no-cache"]) == 0
        out = capsys.readouterr().out
        assert "uov-search" in out and "verified" in out

    def test_compile_spec_file(self, capsys, tmp_path):
        import json

        spec_path = tmp_path / "probe.json"
        spec_path.write_text(
            json.dumps(
                {
                    "name": "probe",
                    "indices": ["t", "x"],
                    "bounds": [[1, "T"], [0, "L - 1"]],
                    "distances": [[1, 1], [1, 0], [1, -1]],
                    "combine": {
                        "kind": "weighted-sum",
                        "weights": [0.25, 0.5, 0.25],
                    },
                    "inputs": {
                        "kind": "padded-line",
                        "axis": 1,
                        "pad": 1,
                        "pad_value": 0.0,
                    },
                    "sizes": {"T": 4, "L": 8},
                }
            )
        )
        assert (
            main(
                ["compile", str(spec_path), "--lint", "--execute",
                 "--no-cache"]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "UOV [2, 0]" in out
        assert "verified" in out

    def test_compile_json_format(self, capsys):
        import json

        assert (
            main(["compile", "jacobi", "--no-cache", "--format", "json"])
            == 0
        )
        doc = json.loads(capsys.readouterr().out)
        assert [s["name"] for s in doc["stages"]][:3] == [
            "parse", "dependence", "uov-search",
        ]

    def test_invalid_spec_reports_diagnostics_not_a_traceback(
        self, capsys, tmp_path
    ):
        spec_path = tmp_path / "broken.json"
        spec_path.write_text('{"name": "broken", "indices": ["t"]}')
        assert main(["compile", str(spec_path)]) == 1
        err = capsys.readouterr().err
        assert "SPEC001" in err

    def test_missing_file_is_a_usage_error(self, capsys):
        assert main(["compile", "no/such/spec.json"]) == 2
        capsys.readouterr()

    def test_unknown_code_name_suggests(self, capsys):
        assert main(["compile", "stencil6"]) == 2
        assert "did you mean 'stencil5'?" in capsys.readouterr().err

    def test_cache_dir_warm_second_run(self, capsys, tmp_path):
        argv = ["compile", "jacobi", "--cache-dir", str(tmp_path)]
        assert main(argv) == 0
        capsys.readouterr()
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "[cached]" in out


class TestRun:
    def test_run_registered_code(self, capsys):
        assert (
            main(["run", "stencil5", "--sizes", "T=4,L=10", "--no-cache"])
            == 0
        )
        assert "verified" in capsys.readouterr().out

    def test_run_with_schedule_override(self, capsys):
        assert (
            main(
                ["run", "jacobi", "--schedule", "tiled", "--tile", "2,4",
                 "--no-cache"]
            )
            == 0
        )
        assert "tiled: legal" in capsys.readouterr().out

    def test_run_unknown_code(self, capsys):
        assert main(["run", "jacobbi"]) == 2
        assert "did you mean 'jacobi'?" in capsys.readouterr().err


class TestList:
    def test_list_everything(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for heading in (
            "codes:", "mappings:", "schedules:", "input-rules:",
            "combine-hooks:", "passes:",
        ):
            assert heading in out
        assert "stencil5" in out and "rolling-buffer" in out

    def test_list_one_registry(self, capsys):
        assert main(["list", "codes"]) == 0
        out = capsys.readouterr().out
        assert "stencil5" in out
        assert "mappings:" not in out

    def test_list_unknown_registry(self, capsys):
        assert main(["list", "codez"]) == 2
        assert "unknown registry" in capsys.readouterr().err


class TestCertify:
    def test_code_certifies(self, capsys):
        assert main(["certify", "--code", "stencil5"]) == 0
        out = capsys.readouterr().out
        assert "universal" in out
        assert "agrees" in out

    def test_stencil_with_bad_ov_exits_1(self, capsys):
        assert (
            main(["certify", "--stencil", "1,0;0,1;1,1", "--ov", "0,1"])
            == 1
        )
        out = capsys.readouterr().out
        assert "NOT universal" in out
        assert "cross-check: agrees" in out

    def test_spec_certifies(self, capsys):
        assert main(["certify", "--spec", "examples/specs/heat7.json"]) == 0
        assert "universal" in capsys.readouterr().out

    def test_json_format(self, capsys):
        import json as json_mod

        assert main(["certify", "--code", "simple2d", "--format", "json"]) == 0
        record = json_mod.loads(capsys.readouterr().out)
        assert record["verdict"] == "universal"

    def test_requires_exactly_one_subject(self, capsys):
        assert main(["certify"]) == 2
        assert (
            main(["certify", "--code", "simple2d", "--spec", "x.json"]) == 2
        )

    def test_stencil_requires_ov(self, capsys):
        assert main(["certify", "--stencil", "1,0;0,1"]) == 2


class TestLintSymbolic:
    def test_symbolic_corpus_is_clean(self, capsys):
        assert main(["lint", "--symbolic"]) == 0
        out = capsys.readouterr().out
        assert "SYM001" not in out and "SYM002" not in out


class TestLintCodes:
    def test_check_passes_when_current(self, capsys):
        assert main(["lint-codes", "--check"]) == 0

    def test_check_fails_when_stale(self, tmp_path, capsys):
        stale = tmp_path / "LINT_CODES.md"
        stale.write_text("# stale\n")
        assert main(["lint-codes", "--check", "--path", str(stale)]) == 1
        assert "stale" in capsys.readouterr().err.lower()

    def test_prints_the_table(self, capsys):
        assert main(["lint-codes"]) == 0
        out = capsys.readouterr().out
        assert "SYM001" in out and "RACE002" in out
