"""ASCII renderers."""

import pytest

from repro.core.stencil import Stencil
from repro.mapping import OVMapping2D, RowMajorMapping
from repro.util.polyhedron import Polytope
from repro.viz import render_done_dead, render_mapping, render_stencil


class TestStencilRendering:
    def test_fig1(self, fig1_stencil):
        art = render_stencil(fig1_stencil)
        assert art.count("o") == 3
        assert art.count("*") == 1

    def test_3d_rejected(self):
        with pytest.raises(ValueError):
            render_stencil(Stencil([(1, 0, 0)]))


class TestDoneDeadRendering:
    def test_markers_present(self, fig2_stencil):
        art = render_done_dead(fig2_stencil, (6, 4), [(0, 7), (0, 8)])
        assert art.count("q") >= 1
        assert "#" in art and "D" in art and "." in art

    def test_dead_is_inside_done_region(self, fig1_stencil):
        # every D and # sits at lexicographically earlier rows than q
        art = render_done_dead(fig1_stencil, (4, 4), [(0, 5), (0, 5)])
        rows = art.splitlines()[:6]
        q_row = next(i for i, r in enumerate(rows) if "q" in r)
        for i, row in enumerate(rows):
            if i > q_row:
                assert "D" not in row and "#" not in row

    def test_dimension_check(self):
        with pytest.raises(ValueError):
            render_done_dead(
                Stencil([(1, 0, 0)]), (0, 0, 0), [(0, 1)] * 3
            )


class TestMappingRendering:
    def test_ov_grid_shows_reuse(self):
        isg = Polytope.from_box((0, 0), (5, 7))
        art = render_mapping(
            OVMapping2D((2, 0), isg, "consecutive"), [(0, 5), (0, 7)]
        )
        lines = art.splitlines()
        assert lines[0] == lines[2] == lines[4]  # period two down columns
        assert lines[1] == lines[3] == lines[5]
        assert lines[0] != lines[1]

    def test_natural_grid_is_sequential(self):
        art = render_mapping(RowMajorMapping((2, 3)), [(0, 1), (0, 2)])
        assert art.split() == [str(k) for k in range(6)]

    def test_dimension_check(self):
        with pytest.raises(ValueError):
            render_mapping(RowMajorMapping((2, 2, 2)), [(0, 1)] * 3)
