"""The exact integer Fourier-Motzkin engine."""

import random
from fractions import Fraction
from itertools import product

import pytest

from repro.util.fm import (
    Constraint,
    FMBudgetExceeded,
    LinExpr,
    System,
    Trace,
)


def ineq(coeffs, const=0):
    return Constraint(LinExpr.of(coeffs, const))


def eq(coeffs, const=0):
    return Constraint(LinExpr.of(coeffs, const), equality=True)


class TestLinExpr:
    def test_construction_drops_zero_coefficients(self):
        e = LinExpr.of({"x": 0, "y": 2}, 3)
        assert e.variables == ("y",)
        assert e.coeff("x") == 0 and e.coeff("y") == 2

    def test_substitute(self):
        # 2x + y + 1 with x := y - 1  ->  3y - 1
        e = LinExpr.of({"x": 2, "y": 1}, 1)
        s = e.substitute("x", LinExpr.of({"y": 1}, -1))
        assert s.coeff("y") == 3 and s.const == -1 and s.coeff("x") == 0

    def test_evaluate(self):
        e = LinExpr.of({"x": 2, "y": -3}, 5)
        assert e.evaluate({"x": 1, "y": 2}) == 1

    def test_str_round_trips_signs(self):
        assert str(LinExpr.of({"x": -1, "y": 2}, -3)) == "- x + 2*y - 3"


class TestEmptiness:
    def test_trivial_nonempty(self):
        assert not System([ineq({"x": 1})]).is_empty()

    def test_contradictory_interval(self):
        # x >= 3 and x <= 2
        s = System([ineq({"x": 1}, -3), ineq({"x": -1}, 2)])
        assert s.is_empty()

    def test_gcd_infeasible_equality(self):
        # 2x + 4y == 1 has no integer solution.
        assert System([eq({"x": 2, "y": 4}, -1)]).is_empty()

    def test_dark_shadow_parity_gap(self):
        # 2x == y, 3 <= y <= 3 (odd): empty over the integers though the
        # rational relaxation is not.
        s = System(
            [
                eq({"x": 2, "y": -1}),
                ineq({"y": 1}, -3),
                ineq({"y": -1}, 3),
            ]
        )
        assert s.is_empty()
        assert s.sample_rational() is None or True  # rational may exist

    def test_omega_gap_classic(self):
        # Pugh's example family: 3x >= 2y, 2y >= 3x - 1 forces
        # 3x - 2y in {0, 1}; adding parity constraints can empty it.
        s = System(
            [
                ineq({"x": 3, "y": -2}),
                ineq({"x": -3, "y": 2}, 1),
                eq({"x": 1, "z": -2}),  # x even
                eq({"y": 1, "w": -2}, -1),  # y odd
                ineq({"x": 1}, 0),
                ineq({"x": -1}, 4),
            ]
        )
        # Ground truth by brute force over the bounded relaxation.
        brute = any(
            3 * x - 2 * y >= 0
            and -3 * x + 2 * y + 1 >= 0
            and x % 2 == 0
            and (y - 1) % 2 == 0
            and 0 <= x <= 4
            for x in range(-8, 9)
            for y in range(-8, 9)
        )
        assert s.is_empty() == (not brute)

    def test_infeasible_trace_recorded(self):
        trace = Trace()
        System([ineq({}, -1)]).is_empty(trace)
        assert any("op" in step for step in trace.to_json())


class TestProjection:
    def test_projection_contains_shadow(self):
        # x == 4y - 4, 0 <= y <= 3  projected onto x.
        s = System(
            [
                eq({"x": -1, "y": 4}, -4),
                ineq({"y": 1}),
                ineq({"y": -1}, 3),
            ]
        )
        proj = s.project(["x"])
        for y in range(0, 4):
            assert proj.satisfies({"x": 4 * y - 4})

    def test_dark_projection_points_lift(self):
        s = System(
            [
                ineq({"x": 2, "y": -1}, 1),
                ineq({"x": -2, "y": 1}, 5),
                ineq({"y": 1}),
                ineq({"y": -1}, 9),
            ]
        )
        dark = s.project(["y"], dark=True)
        for y in range(0, 10):
            if dark.satisfies({"y": y}):
                lifted = s._with_fixed("y", y)
                assert not lifted.is_empty()

    def test_parametric_projection(self):
        # Cone coefficients bounded by a size parameter N.
        s = System(
            [
                ineq({"a0": 1}),
                ineq({"a1": 1}),
                eq({"a0": 1, "a1": 2, "N": -1}, 1),
                ineq({"N": 1}, -3),
            ]
        )
        proj = s.project(["N"])
        assert not proj.is_empty()
        assert proj.satisfies({"N": 3})
        assert not proj.satisfies({"N": 0})


class TestSampling:
    def test_sample_satisfies(self):
        s = System(
            [
                ineq({"x": 1}, -2),
                ineq({"x": -1}, 7),
                eq({"x": -1, "y": 4}, -4),
            ]
        )
        point = s.sample_point()
        assert point is not None
        assert s.satisfies(point)

    def test_sample_prefers_small(self):
        s = System([ineq({"x": 1}, -3)])
        assert s.sample_point() == {"x": 3}

    def test_sample_empty_returns_none(self):
        assert System([ineq({}, -1)]).sample_point() is None

    def test_sample_unbounded_below(self):
        s = System([ineq({"x": -1}, -5)])  # x <= -5
        point = s.sample_point()
        assert point is not None and point["x"] <= -5

    def test_rational_fallback(self):
        # The fallback witness is rational: midpoints of the eliminated
        # intervals, back-substituted — it must satisfy every constraint
        # over the rationals.
        s = System(
            [
                ineq({"x": 1, "y": 2}, -3),
                ineq({"x": -1, "y": 1}, 10),
                ineq({"y": -1}, 4),
                ineq({"y": 1}),
            ]
        )
        rational = s.sample_rational()
        assert rational is not None
        for con in s.constraints:
            value = con.expr.evaluate_rational(
                {v: rational.get(v, Fraction(0)) for v in con.expr.variables}
            )
            assert value >= 0

    def test_rational_fallback_empty_system(self):
        # Integer-tightened contradiction: x >= 1 (from 2x >= 1) and
        # x <= 0 (from 2x <= 1) — the fallback reports emptiness too.
        s = System([ineq({"x": 2}, -1), ineq({"x": -2}, 1)])
        assert s.is_empty()
        assert s.sample_rational() is None

    def test_budget_ceiling_raises(self):
        with pytest.raises(FMBudgetExceeded):
            System([ineq({"x": 1}, k) for k in range(5000)])


class TestDifferentialVsBruteForce:
    """The engine against exhaustive enumeration on boxed random systems."""

    SPAN = 4

    def brute(self, system, names):
        for values in product(range(-self.SPAN, self.SPAN + 1), repeat=len(names)):
            if system.satisfies(dict(zip(names, values))):
                return dict(zip(names, values))
        return None

    def random_system(self, rng, names):
        constraints = []
        for name in names:  # box the space so brute force is exhaustive
            constraints.append(ineq({name: 1}, self.SPAN))
            constraints.append(ineq({name: -1}, self.SPAN))
        for _ in range(rng.randint(1, 4)):
            coeffs = {
                n: rng.randint(-3, 3)
                for n in rng.sample(names, rng.randint(1, len(names)))
            }
            constraints.append(
                Constraint(
                    LinExpr.of(coeffs, rng.randint(-6, 6)),
                    equality=rng.random() < 0.3,
                )
            )
        return System(constraints)

    def test_emptiness_and_samples_agree(self):
        rng = random.Random(1998)
        for trial in range(150):
            names = ["x", "y", "z"][: rng.randint(1, 3)]
            system = self.random_system(rng, names)
            truth = self.brute(system, names)
            assert system.is_empty() == (truth is None), (
                f"trial {trial}: {system}"
            )
            point = system.sample_point()
            if truth is None:
                assert point is None
            else:
                assert point is not None and system.satisfies(point)

    def test_projection_soundness(self):
        rng = random.Random(4)
        for trial in range(60):
            names = ["x", "y", "z"][: rng.randint(2, 3)]
            system = self.random_system(rng, names)
            keep = names[:1]
            proj = system.project(keep)
            truth = self.brute(system, names)
            if truth is not None:
                assert proj.satisfies({k: truth[k] for k in keep}), (
                    f"trial {trial}: projection lost {truth} of {system}"
                )
