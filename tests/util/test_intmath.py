"""Integer math: extended gcd, unimodular completions, exact determinants."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.util.intmath import (
    ceil_div,
    extended_gcd,
    floor_div,
    is_prime_vector,
    matmul_int,
    matrix_det_int,
    matrix_inverse_unimodular,
    matvec,
    unimodular_completion,
    vector_gcd,
)

ints = st.integers(min_value=-50, max_value=50)


class TestExtendedGcd:
    @given(ints, ints)
    def test_bezout_identity(self, a, b):
        g, x, y = extended_gcd(a, b)
        assert g == math.gcd(a, b)
        assert a * x + b * y == g

    def test_zero_zero(self):
        g, x, y = extended_gcd(0, 0)
        assert g == 0 and 0 * x + 0 * y == 0

    def test_negative_inputs_give_nonnegative_gcd(self):
        g, x, y = extended_gcd(-12, -18)
        assert g == 6
        assert -12 * x + -18 * y == 6


class TestVectorGcd:
    def test_known(self):
        assert vector_gcd((2, 0)) == 2
        assert vector_gcd((3, 1)) == 1
        assert vector_gcd((6, -9, 15)) == 3
        assert vector_gcd((0, 0)) == 0

    def test_prime_vector(self):
        assert is_prime_vector((1, 1))
        assert is_prime_vector((3, 1))
        assert not is_prime_vector((2, 0))
        assert not is_prime_vector((2, 2))

    @given(st.lists(ints, min_size=1, max_size=4))
    def test_divides_every_component(self, v):
        g = vector_gcd(v)
        if g:
            assert all(c % g == 0 for c in v)
        else:
            assert all(c == 0 for c in v)


class TestUnimodularCompletion:
    @given(
        st.lists(ints, min_size=1, max_size=4).filter(
            lambda v: any(c != 0 for c in v)
        )
    )
    def test_completion_properties(self, v):
        u = unimodular_completion(v)
        assert matrix_det_int(u) in (1, -1)
        image = matvec(u, v)
        g = vector_gcd(v)
        assert image[0] == g
        assert all(c == 0 for c in image[1:])

    def test_zero_vector_rejected(self):
        with pytest.raises(ValueError):
            unimodular_completion((0, 0, 0))

    def test_primitive_vector_first_row_is_bezout(self):
        u = unimodular_completion((3, 5))
        assert matvec(u, (3, 5)) == (1, 0)


class TestDeterminantAndInverse:
    def test_det_known(self):
        assert matrix_det_int([[1, 2], [3, 4]]) == -2
        assert matrix_det_int([[2, 0, 0], [0, 3, 0], [0, 0, 4]]) == 24
        assert matrix_det_int([[1, 1], [1, 1]]) == 0
        assert matrix_det_int([]) == 1

    def test_det_with_zero_pivot(self):
        assert matrix_det_int([[0, 1], [1, 0]]) == -1

    def test_non_square_rejected(self):
        with pytest.raises(ValueError):
            matrix_det_int([[1, 2, 3], [4, 5, 6]])

    @given(
        st.lists(
            st.lists(st.integers(-3, 3), min_size=3, max_size=3),
            min_size=3,
            max_size=3,
        )
    )
    def test_inverse_when_unimodular(self, m):
        det = matrix_det_int(m)
        if det not in (1, -1):
            with pytest.raises(ValueError):
                matrix_inverse_unimodular(m)
            return
        inv = matrix_inverse_unimodular(m)
        identity = matmul_int(m, inv)
        assert identity == [
            [1 if i == j else 0 for j in range(3)] for i in range(3)
        ]

    def test_skew_inverse(self):
        assert matrix_inverse_unimodular([[1, 0], [2, 1]]) == [
            [1, 0],
            [-2, 1],
        ]


class TestDivisionHelpers:
    @given(ints, ints.filter(lambda b: b != 0))
    def test_ceil_floor_consistency(self, a, b):
        assert floor_div(a, b) <= a / b <= ceil_div(a, b)
        assert ceil_div(a, b) - floor_div(a, b) in (0, 1)
        assert floor_div(a, b) == a // b if b > 0 else True

    def test_zero_divisor(self):
        with pytest.raises(ZeroDivisionError):
            ceil_div(1, 0)
        with pytest.raises(ZeroDivisionError):
            floor_div(1, 0)
