"""Polytope geometry: extents, projections, widths, containment."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.util.polyhedron import Polytope


class TestConstruction:
    def test_from_box_corners(self):
        p = Polytope.from_box((0, 0), (3, 5))
        assert set(p.vertices) == {(0, 0), (0, 5), (3, 0), (3, 5)}
        assert p.dim == 2

    def test_empty_box_rejected(self):
        with pytest.raises(ValueError):
            Polytope.from_box((2, 0), (1, 5))

    def test_mixed_dims_rejected(self):
        with pytest.raises(ValueError):
            Polytope([(1, 2), (1, 2, 3)])

    def test_no_vertices_rejected(self):
        with pytest.raises(ValueError):
            Polytope([])

    def test_equality_ignores_vertex_order(self):
        a = Polytope([(0, 0), (1, 1), (2, 0)])
        b = Polytope([(2, 0), (0, 0), (1, 1)])
        assert a == b
        assert hash(a) == hash(b)


class TestExtentAndProjection:
    def test_extent_along_axis(self):
        p = Polytope.from_box((1, 2), (4, 9))
        assert p.extent((1, 0)) == (1, 4)
        assert p.extent((0, 1)) == (2, 9)
        assert p.extent((-1, 1)) == (2 - 4, 9 - 1)

    def test_projection_count_is_figure6(self):
        # Figure 6: mv=(-1,1) over extreme points (0,m),(n,0) -> n+m+1.
        n, m = 7, 11
        p = Polytope.from_box((0, 0), (n, m))
        assert p.projection_count((-1, 1)) == n + m + 1

    @given(
        st.integers(0, 8),
        st.integers(0, 8),
        st.integers(-3, 3),
        st.integers(-3, 3),
    )
    def test_projection_count_matches_enumeration(self, n, m, a, b):
        if a == 0 and b == 0:
            return
        p = Polytope.from_box((0, 0), (n, m))
        values = {
            a * i + b * j for i in range(n + 1) for j in range(m + 1)
        }
        # The formula counts the integer interval; for coprime (a, b) every
        # value is attained when the box is large enough, and the interval
        # always contains the attained set.
        lo, hi = p.extent((a, b))
        assert min(values) == lo and max(values) == hi
        assert p.projection_count((a, b)) == hi - lo + 1
        assert len(values) <= hi - lo + 1
        # Unit coefficients (the mapping vectors our 2-D OV mappings
        # produce for the paper's examples) attain every integer.
        if abs(a) <= 1 and abs(b) <= 1:
            assert len(values) == hi - lo + 1


class TestWidths:
    def test_rectangle_min_width_is_short_side(self):
        p = Polytope.from_box((0, 0), (10, 3))
        assert math.isclose(p.min_width(), 3.0)

    def test_width_along_diagonal(self):
        p = Polytope.from_box((0, 0), (4, 4))
        assert math.isclose(p.width((1, 1)), 8 / math.sqrt(2))

    def test_zero_direction_rejected(self):
        p = Polytope.from_box((0, 0), (1, 1))
        with pytest.raises(ValueError):
            p.width((0, 0))

    def test_parallelogram_min_width(self, fig3_isg):
        # The Figure 3 parallelogram is thinner across its slanted sides
        # than along either axis.
        assert fig3_isg.min_width() < 5.0


class TestContainment:
    def test_box_contains(self):
        p = Polytope.from_box((0, 0), (3, 3))
        assert p.contains((2, 3))
        assert not p.contains((4, 0))
        assert not p.contains((-1, 2))

    def test_parallelogram_contains(self, fig3_isg):
        assert fig3_isg.contains((5, 5))
        assert fig3_isg.contains((1, 1))
        assert not fig3_isg.contains((1, 9))  # outside the slanted edge
        assert not fig3_isg.contains((10, 2))

    def test_degenerate_segment(self):
        p = Polytope([(0, 0), (3, 3)])
        assert p.contains((1, 1))
        assert not p.contains((1, 2))

    def test_single_point(self):
        p = Polytope([(2, 2)])
        assert p.contains((2, 2))
        assert not p.contains((2, 3))

    def test_3d_falls_back_to_box(self):
        p = Polytope.from_box((0, 0, 0), (2, 2, 2))
        assert p.contains((1, 1, 1))
        assert not p.contains((3, 0, 0))


class TestCounts:
    def test_integer_point_count_box(self):
        p = Polytope.from_box((1, 1), (3, 4))
        assert p.integer_point_count() == 3 * 4

    def test_bounding_box(self, fig3_isg):
        assert fig3_isg.bounding_box() == ((1, 1), (10, 9))
