"""Priority queue with lazy reprioritisation."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.util.priorityqueue import PriorityQueue


class TestBasics:
    def test_pops_in_priority_order(self):
        q = PriorityQueue()
        q.push("c", 3)
        q.push("a", 1)
        q.push("b", 2)
        assert [q.pop()[0] for _ in range(3)] == ["a", "b", "c"]

    def test_pop_empty_raises(self):
        with pytest.raises(IndexError):
            PriorityQueue().pop()

    def test_contains_and_len(self):
        q = PriorityQueue()
        q.push("x", 1)
        assert "x" in q and len(q) == 1 and bool(q)
        q.pop()
        assert "x" not in q and not q

    def test_fifo_tie_break(self):
        q = PriorityQueue()
        q.push("first", 1)
        q.push("second", 1)
        assert q.pop()[0] == "first"

    def test_equal_priorities_pop_in_insertion_order(self):
        # The UOV search's determinism guarantee: ties never depend on
        # hash order or heap settling, only on push order.
        q = PriorityQueue()
        items = [f"item{k}" for k in range(12)]
        for item in items:
            q.push(item, 7)
        assert [q.pop()[0] for _ in items] == items

    def test_mixed_priorities_sort_then_fifo(self):
        q = PriorityQueue()
        q.push("b1", 2)
        q.push("a1", 1)
        q.push("b2", 2)
        q.push("a2", 1)
        popped = [q.pop()[0] for _ in range(4)]
        assert popped == ["a1", "a2", "b1", "b2"]

    def test_pop_detects_priority_mutated_in_place(self):
        # Mutating a priority object after pushing corrupts the heap
        # order the determinism guarantee rests on; the guard must fire
        # rather than silently pop in a corrupted order.
        q = PriorityQueue()
        mutable = [5]
        q.push("victim", mutable)
        q.push("low", [1])
        q.push("mid", [3])
        mutable[0] = 0  # now sorts below entries heapified above it
        with pytest.raises(AssertionError, match="heap order corrupted"):
            for _ in range(3):
                q.pop()

    def test_peek_priority(self):
        q = PriorityQueue()
        q.push("a", 5)
        q.push("b", 2)
        assert q.peek_priority() == 2
        assert len(q) == 2  # peek does not remove


class TestReprioritisation:
    def test_better_priority_supersedes(self):
        q = PriorityQueue()
        q.push("x", 10)
        assert q.push("x", 1)
        q.push("y", 5)
        assert q.pop() == ("x", 1)
        assert q.pop() == ("y", 5)

    def test_worse_priority_is_noop(self):
        q = PriorityQueue()
        q.push("x", 1)
        assert not q.push("x", 10)
        assert q.pop() == ("x", 1)

    def test_reinsert_after_pop(self):
        q = PriorityQueue()
        q.push("x", 1)
        q.pop()
        assert q.push("x", 2)
        assert q.pop() == ("x", 2)


@given(
    st.lists(
        st.tuples(st.integers(0, 20), st.integers(-50, 50)), max_size=60
    )
)
def test_matches_reference_model(operations):
    """Against a dict-based reference: final pop order must agree."""
    q = PriorityQueue()
    model: dict[int, int] = {}
    counter = 0
    order: dict[int, int] = {}
    for item, priority in operations:
        if item not in model or priority < model[item]:
            # An improving push creates a fresh heap entry, so the item's
            # FIFO rank among equal priorities is that of the *latest*
            # successful push.
            model[item] = priority
            order[item] = counter
        q.push(item, priority)
        counter += 1
    popped = []
    while q:
        popped.append(q.pop())
    expected = sorted(model.items(), key=lambda kv: (kv[1], order[kv[0]]))
    assert popped == expected
