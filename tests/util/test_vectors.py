"""Integer-vector helpers."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.util.vectors import (
    add,
    as_vector,
    dot,
    is_lex_positive,
    is_zero,
    lex_leq,
    manhattan,
    neg,
    norm,
    norm2,
    scale,
    sub,
)

vec = st.lists(st.integers(-20, 20), min_size=1, max_size=4).map(tuple)


class TestBasics:
    @given(vec)
    def test_add_sub_roundtrip(self, v):
        w = tuple(c + 1 for c in v)
        assert sub(add(v, w), w) == v

    @given(vec)
    def test_neg_is_scale_minus_one(self, v):
        assert neg(v) == scale(-1, v)

    @given(vec)
    def test_norm2_matches_dot(self, v):
        assert norm2(v) == dot(v, v)
        assert abs(norm(v) ** 2 - norm2(v)) < 1e-6

    def test_dimension_mismatch(self):
        with pytest.raises(ValueError):
            add((1, 2), (1, 2, 3))
        with pytest.raises(ValueError):
            dot((1,), (1, 2))


class TestLexOrder:
    def test_lex_positive(self):
        assert is_lex_positive((1, -5))
        assert is_lex_positive((0, 0, 2))
        assert not is_lex_positive((0, 0))
        assert not is_lex_positive((-1, 10))
        assert not is_lex_positive((0, -1, 5))

    @given(vec)
    def test_nonzero_vector_sign(self, v):
        if is_zero(v):
            assert not is_lex_positive(v) and not is_lex_positive(neg(v))
        else:
            assert is_lex_positive(v) != is_lex_positive(neg(v))

    @given(vec, vec)
    def test_lex_leq_total_order(self, a, b):
        if len(a) == len(b):
            assert lex_leq(a, b) or lex_leq(b, a)


class TestCoercion:
    def test_as_vector_accepts_numpy_scalars(self):
        import numpy as np

        assert as_vector(np.array([1, 2], dtype=np.int64)) == (1, 2)

    def test_as_vector_rejects_floats_and_bools(self):
        with pytest.raises(TypeError):
            as_vector((1.5, 2))
        with pytest.raises(TypeError):
            as_vector((True, 1))

    def test_manhattan(self):
        assert manhattan((3, -4)) == 7
